//! Single-queue M/M/1 with processor sharing.
//!
//! §2.3 of the paper: each computer is "modeled as an M/M/1 queue which
//! employs the processor sharing (PS) service discipline". For such a
//! queue with arrival rate `λ` and service rate `μ` (utilization
//! `ρ = λ/μ < 1`):
//!
//! * conditional response time of a job of size `t`:
//!   `E[T | size = t] = t / (1 − ρ)` — the celebrated PS insensitivity;
//! * mean response time (eq. 1): `T̄ = 1 / ((1 − ρ) μ) = 1 / (μ − λ)`;
//! * mean response ratio (eq. 2): `R̄ = 1 / (1 − ρ)`.
//!
//! Under PS these means are *insensitive* to the job-size distribution
//! beyond its mean — the analytic license for using M/M/1-PS formulas
//! while simulating Bounded Pareto sizes.

use serde::{Deserialize, Serialize};

/// An M/M/1 queue with processor-sharing service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mm1Ps {
    lambda: f64,
    mu: f64,
}

impl Mm1Ps {
    /// Creates a queue with arrival rate `λ` and service rate `μ`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ λ < μ` (stability) and both are finite.
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(
            lambda.is_finite() && mu.is_finite() && lambda >= 0.0 && mu > 0.0,
            "rates must be finite with λ ≥ 0, μ > 0 (got λ={lambda}, μ={mu})"
        );
        assert!(lambda < mu, "queue unstable: λ={lambda} ≥ μ={mu}");
        Mm1Ps { lambda, mu }
    }

    /// Arrival rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Service rate `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Utilization `ρ = λ/μ`.
    pub fn utilization(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Conditional mean response time of a job of size `t` (seconds of
    /// work at this server's speed): `t / (1 − ρ)`.
    pub fn response_time_for_size(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "job size must be non-negative");
        t / (1.0 - self.utilization())
    }

    /// Mean response time (eq. 1): `1 / (μ − λ)`.
    pub fn mean_response_time(&self) -> f64 {
        1.0 / (self.mu - self.lambda)
    }

    /// Mean response ratio (eq. 2): `1 / (1 − ρ)`.
    ///
    /// Note: this is the ratio against the job's size *at this server's
    /// speed*; the system-level response ratio against a speed-1 baseline
    /// carries an extra `1/s_i` factor, handled in [`crate::predict`].
    pub fn mean_response_ratio(&self) -> f64 {
        1.0 / (1.0 - self.utilization())
    }

    /// Mean number of jobs in the system: `ρ / (1 − ρ)` (Little's law
    /// with the mean response time above).
    pub fn mean_jobs_in_system(&self) -> f64 {
        let rho = self.utilization();
        rho / (1.0 - rho)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn half_loaded_queue() {
        let q = Mm1Ps::new(0.5, 1.0);
        assert_eq!(q.utilization(), 0.5);
        assert_eq!(q.mean_response_time(), 2.0);
        assert_eq!(q.mean_response_ratio(), 2.0);
        assert_eq!(q.mean_jobs_in_system(), 1.0);
    }

    #[test]
    fn conditional_response_scales_linearly_in_size() {
        // PS: a job twice as large takes exactly twice as long in
        // expectation — the insensitivity property.
        let q = Mm1Ps::new(0.7, 1.0);
        let t1 = q.response_time_for_size(1.0);
        let t2 = q.response_time_for_size(2.0);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn idle_queue_has_unit_ratio() {
        let q = Mm1Ps::new(1e-12, 1.0);
        assert!((q.mean_response_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn response_blows_up_near_saturation() {
        let q = Mm1Ps::new(0.999, 1.0);
        assert!(q.mean_response_time() > 500.0);
    }

    #[test]
    fn littles_law_consistency() {
        // L = λ·W for any stable parameters.
        for &(l, m) in &[(0.3, 1.0), (2.0, 5.0), (0.9, 1.0)] {
            let q = Mm1Ps::new(l, m);
            let littles = q.lambda() * q.mean_response_time();
            assert!((q.mean_jobs_in_system() - littles).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn rejects_unstable() {
        Mm1Ps::new(2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "rates must be finite")]
    fn rejects_negative_lambda() {
        Mm1Ps::new(-0.1, 1.0);
    }

    proptest! {
        /// Eq. 1 and eq. 2 are consistent: T̄·μ = R̄ for every stable queue.
        #[test]
        fn ratio_is_scaled_time(mu in 0.1f64..100.0, rho in 0.001f64..0.999) {
            let q = Mm1Ps::new(rho * mu, mu);
            prop_assert!((q.mean_response_time() * mu - q.mean_response_ratio()).abs() < 1e-9);
        }

        /// Response time is increasing in utilization.
        #[test]
        fn monotone_in_load(mu in 0.1f64..10.0, r1 in 0.01f64..0.98, bump in 0.001f64..0.01) {
            let q1 = Mm1Ps::new(r1 * mu, mu);
            let q2 = Mm1Ps::new((r1 + bump) * mu, mu);
            prop_assert!(q2.mean_response_time() > q1.mean_response_time());
        }
    }
}

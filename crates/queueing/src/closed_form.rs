//! Algorithm 1: the closed-form optimized workload allocation.
//!
//! Theorem 1 gives the unconstrained-sign optimum
//!
//! ```text
//! α_i = (1/λ) ( s_iμ − √(s_iμ) · (Σ_j s_jμ − λ) / (Σ_j √(s_jμ)) )
//! ```
//!
//! which can be negative for very slow machines. Theorem 2 shows the
//! optimum under `α_i ≥ 0` sets exactly those machines to zero: the ones
//! with `√(s_iμ) < (Σ_{j≥i} s_jμ − λ) / (Σ_{j≥i} √(s_jμ))` in ascending
//! speed order — a *contiguous* prefix, so the cutoff index `m` can be
//! found by binary search (Algorithm 1, steps 4–5). The surviving
//! machines share the load by Theorem 1 restricted to the suffix.
//!
//! The qualitative behaviour reproduced here is the paper's headline:
//! fast machines get a **disproportionately** large share; at low load
//! slow machines get *nothing*; as `ρ → 1` the scheme converges to the
//! simple weighted allocation.

use crate::system::HetSystem;
use hetsched_error::HetschedError;

/// The Theorem-2 cutoff predicate for 0-based index `i` into the
/// ascending-speed array: machine `i` should be cut off iff
/// `√(s_iμ) < (Σ_{j≥i} s_jμ − λ) / (Σ_{j≥i} √(s_jμ))`.
fn should_cut(sorted: &[f64], mu: f64, lambda: f64, i: usize) -> bool {
    let rest = &sorted[i..];
    let cap: f64 = rest.iter().map(|&s| s * mu).sum();
    let sqrt_sum: f64 = rest.iter().map(|&s| (s * mu).sqrt()).sum();
    (sorted[i] * mu).sqrt() < (cap - lambda) / sqrt_sum
}

/// Finds the number of machines to cut off (the paper's `m`) by binary
/// search over the ascending-speed array, exactly as Algorithm 1 steps
/// 3–5.
fn cutoff_binary_search(sorted: &[f64], mu: f64, lambda: f64) -> usize {
    // 0-based translation of the paper's 1-based search: find the number
    // of leading indices satisfying the predicate.
    let mut lower = 0usize; // candidate index, inclusive
    let mut upper = sorted.len(); // exclusive
    while lower < upper {
        let mid = (lower + upper) / 2;
        if should_cut(sorted, mu, lambda, mid) {
            lower = mid + 1;
        } else {
            upper = mid;
        }
    }
    lower
}

/// Reference linear-scan cutoff (used to property-test the binary search
/// and the contiguity claim of footnote 3).
pub fn cutoff_linear_scan(sorted: &[f64], mu: f64, lambda: f64) -> usize {
    let mut m = 0;
    for i in 0..sorted.len() {
        if should_cut(sorted, mu, lambda, i) {
            m = i + 1;
        }
    }
    m
}

/// Computes the optimized workload allocation for `sys` (Algorithm 1).
///
/// Returns the fractions in the *original* speed order (the paper sorts
/// internally; we restore the caller's order). The result satisfies
/// `Σα = 1`, `α_i ≥ 0`, and `α_iλ < s_iμ` for every machine.
pub fn optimized_allocation(sys: &HetSystem) -> Vec<f64> {
    let n = sys.len();
    let mu = sys.mu();
    let lambda = sys.lambda();

    // Step 2: sort speeds ascending, remembering original positions.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        sys.speeds()[a]
            .partial_cmp(&sys.speeds()[b])
            .expect("speeds are finite")
    });
    let sorted: Vec<f64> = order.iter().map(|&i| sys.speeds()[i]).collect();

    // Steps 3–5: locate the cutoff.
    let m = cutoff_binary_search(&sorted, mu, lambda);
    debug_assert!(m < n, "cutoff must leave at least one machine");

    // Steps 6–7: zero the slow prefix, closed form for the suffix.
    let rest = &sorted[m..];
    let cap: f64 = rest.iter().map(|&s| s * mu).sum();
    let sqrt_sum: f64 = rest.iter().map(|&s| (s * mu).sqrt()).sum();
    let c = (cap - lambda) / sqrt_sum;

    let mut alphas = vec![0.0; n];
    for (k, &orig) in order.iter().enumerate() {
        if k < m {
            continue;
        }
        let s = sorted[k];
        let a = (s * mu - (s * mu).sqrt() * c) / lambda;
        // Clamp float dust at the boundary (machines exactly at the
        // cutoff get α = 0 analytically).
        alphas[orig] = a.max(0.0);
    }

    // The fractions sum to 1 analytically; renormalize away rounding so
    // downstream dispatchers can rely on Σα = 1 exactly.
    let sum: f64 = alphas.iter().sum();
    debug_assert!((sum - 1.0).abs() < 1e-9, "allocation sum {sum} far from 1");
    for a in &mut alphas {
        *a /= sum;
    }
    alphas
}

/// Convenience wrapper: optimized allocation for speeds at a target
/// utilization (`μ = 1`), the exact signature of the paper's Algorithm 1.
///
/// ```
/// use hetsched_queueing::closed_form::optimized_allocation_for;
///
/// // A 1x and a 10x machine at 50% utilization: the optimized scheme
/// // sends almost everything to the fast machine...
/// let alphas = optimized_allocation_for(&[1.0, 10.0], 0.5);
/// assert!(alphas[1] > 0.93);
/// // ...while the proportional split would send it only 10/11 ≈ 0.91.
/// assert!((alphas[0] + alphas[1] - 1.0).abs() < 1e-12);
///
/// // At very light load the slow machine is cut off entirely (Thm. 2).
/// let light = optimized_allocation_for(&[1.0, 10.0], 0.1);
/// assert_eq!(light[0], 0.0);
/// ```
///
/// # Panics
/// Panics if the parameters are invalid (empty speeds, `ρ ∉ (0,1)`).
/// Use [`try_optimized_allocation_for`] for a panic-free variant.
pub fn optimized_allocation_for(speeds: &[f64], rho: f64) -> Vec<f64> {
    let sys = HetSystem::from_utilization(speeds, rho)
        .expect("invalid speeds/utilization for Algorithm 1");
    optimized_allocation(&sys)
}

/// Panic-free Algorithm 1 with explicit guards for every degenerate
/// input a degraded cluster can produce: no computers, zero/negative or
/// non-finite speeds, and a utilization outside `(0, 1)` (including the
/// saturated case `ρ ≥ 1` a shrunken live subset can reach). A
/// single-computer system trivially gets the whole workload.
///
/// # Errors
/// * [`HetschedError::NoComputers`] — `speeds` is empty (e.g. every
///   server failed);
/// * [`HetschedError::BadParameter`] — a speed is not positive and
///   finite, or `ρ ≤ 0` / non-finite;
/// * [`HetschedError::Saturated`] — `ρ ≥ 1`: no stabilizing allocation
///   exists;
/// * [`HetschedError::Solver`] — the closed form produced a non-finite
///   fraction (defensive; not expected for guarded inputs).
pub fn try_optimized_allocation_for(speeds: &[f64], rho: f64) -> Result<Vec<f64>, HetschedError> {
    if speeds.is_empty() {
        return Err(HetschedError::NoComputers);
    }
    for (i, &s) in speeds.iter().enumerate() {
        if !(s.is_finite() && s > 0.0) {
            return Err(HetschedError::BadParameter(format!(
                "speed[{i}] must be positive and finite, got {s}"
            )));
        }
    }
    if !(rho.is_finite() && rho > 0.0) {
        return Err(HetschedError::BadParameter(format!(
            "utilization must lie in (0,1), got {rho}"
        )));
    }
    if rho >= 1.0 {
        return Err(HetschedError::Saturated);
    }
    if speeds.len() == 1 {
        return Ok(vec![1.0]);
    }
    let sys = HetSystem::from_utilization(speeds, rho)?;
    let alphas = optimized_allocation(&sys);
    if alphas.iter().any(|a| !a.is_finite()) {
        return Err(HetschedError::Solver(format!(
            "closed form produced non-finite fractions for speeds {speeds:?} at rho {rho}"
        )));
    }
    Ok(alphas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{cutoff_min_value, objective_f, theorem1_min_value};
    use crate::system::validate_allocation;
    use proptest::prelude::*;

    #[test]
    fn homogeneous_system_gets_equal_shares() {
        let sys = HetSystem::from_utilization(&[2.0, 2.0, 2.0, 2.0], 0.7).unwrap();
        let a = optimized_allocation(&sys);
        for &x in &a {
            assert!((x - 0.25).abs() < 1e-12, "{a:?}");
        }
    }

    #[test]
    fn allocation_is_valid_probability_vector() {
        let sys = HetSystem::from_utilization(&[1.0, 1.5, 2.0, 3.0, 5.0, 9.0, 10.0], 0.7).unwrap();
        let a = optimized_allocation(&sys);
        assert!(validate_allocation(&sys, &a), "{a:?}");
    }

    #[test]
    fn fast_machines_get_disproportionate_share() {
        // The paper's core claim (§2.3): optimized allocation is more
        // skewed than proportional.
        let sys = HetSystem::from_utilization(&[1.0, 10.0], 0.5).unwrap();
        let opt = optimized_allocation(&sys);
        let w = sys.weighted_allocation();
        assert!(
            opt[1] > w[1],
            "fast machine: optimized {} ≤ weighted {}",
            opt[1],
            w[1]
        );
        assert!(opt[0] < w[0]);
    }

    #[test]
    fn slow_machines_cut_off_at_low_load() {
        // At ρ = 0.2 with a 20:1 speed ratio, the slow machines should
        // receive zero workload.
        let speeds = [1.0, 1.0, 20.0];
        let sys = HetSystem::from_utilization(&speeds, 0.2).unwrap();
        let a = optimized_allocation(&sys);
        assert_eq!(a[0], 0.0, "{a:?}");
        assert_eq!(a[1], 0.0, "{a:?}");
        assert!((a[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_cutoff_at_high_load() {
        let speeds = [1.0, 1.0, 20.0];
        let sys = HetSystem::from_utilization(&speeds, 0.95).unwrap();
        let a = optimized_allocation(&sys);
        assert!(a.iter().all(|&x| x > 0.0), "{a:?}");
    }

    #[test]
    fn converges_to_weighted_as_load_approaches_one() {
        // §2.3: "When the system utilization approaches 100%, the
        // optimized allocation scheme degenerates to the simple weighted
        // scheme."
        let speeds = [1.0, 2.0, 5.0, 10.0];
        let sys = HetSystem::from_utilization(&speeds, 0.9999).unwrap();
        let a = optimized_allocation(&sys);
        let w = sys.weighted_allocation();
        for (x, y) in a.iter().zip(&w) {
            assert!((x - y).abs() < 1e-3, "{a:?} vs {w:?}");
        }
    }

    #[test]
    fn more_skewed_at_lower_load() {
        // §2.2: "The distribution of workload becomes even more skewed
        // when the system utilization decreases."
        let speeds = [1.0, 10.0];
        let lo = optimized_allocation_for(&speeds, 0.3);
        let hi = optimized_allocation_for(&speeds, 0.9);
        assert!(
            lo[1] > hi[1],
            "fast share at ρ=0.3 ({}) should exceed ρ=0.9 ({})",
            lo[1],
            hi[1]
        );
    }

    #[test]
    fn original_order_is_preserved() {
        // Speeds deliberately unsorted: result must align by index.
        let sys = HetSystem::from_utilization(&[10.0, 1.0, 5.0], 0.8).unwrap();
        let a = optimized_allocation(&sys);
        assert!(a[0] > a[2] && a[2] > a[1], "{a:?}");
    }

    #[test]
    fn matches_theorem1_value_without_cutoff() {
        let sys = HetSystem::from_utilization(&[4.0, 5.0, 6.0], 0.8).unwrap();
        let a = optimized_allocation(&sys);
        assert!(a.iter().all(|&x| x > 0.0), "no machine should be cut");
        let f = objective_f(&sys, &a).unwrap();
        let bound = theorem1_min_value(&sys);
        assert!((f - bound).abs() / bound < 1e-9, "F={f}, bound={bound}");
    }

    #[test]
    fn matches_cutoff_value_with_cutoff() {
        let speeds = [1.0, 1.0, 20.0];
        let sys = HetSystem::from_utilization(&speeds, 0.2).unwrap();
        let a = optimized_allocation(&sys);
        let f = objective_f(&sys, &a).unwrap();
        let mut sorted = speeds.to_vec();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let bound = cutoff_min_value(&sorted, sys.mu(), sys.lambda(), 2);
        assert!((f - bound).abs() / bound < 1e-9, "F={f}, bound={bound}");
    }

    #[test]
    fn beats_weighted_and_equal_everywhere() {
        for &rho in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let sys = HetSystem::from_utilization(&[1.0, 1.5, 2.0, 5.0, 10.0, 12.0], rho).unwrap();
            let f_opt = objective_f(&sys, &optimized_allocation(&sys)).unwrap();
            let f_w = objective_f(&sys, &sys.weighted_allocation()).unwrap();
            assert!(f_opt <= f_w + 1e-9, "ρ={rho}: opt {f_opt} > weighted {f_w}");
            if let Some(f_e) = objective_f(&sys, &sys.equal_allocation()) {
                assert!(f_opt <= f_e + 1e-9, "ρ={rho}: opt {f_opt} > equal {f_e}");
            }
        }
    }

    #[test]
    fn local_perturbations_do_not_improve() {
        // Move ε of workload between every machine pair with α_i > 0 and
        // verify F does not decrease — first-order optimality.
        let sys = HetSystem::from_utilization(&[1.0, 2.0, 3.0, 8.0], 0.6).unwrap();
        let a = optimized_allocation(&sys);
        let f0 = objective_f(&sys, &a).unwrap();
        let eps = 1e-6;
        for i in 0..a.len() {
            for j in 0..a.len() {
                if i == j || a[i] < eps {
                    continue;
                }
                let mut b = a.clone();
                b[i] -= eps;
                b[j] += eps;
                if let Some(f) = objective_f(&sys, &b) {
                    assert!(
                        f >= f0 - 1e-12,
                        "moving {eps} from {i} to {j} improved F: {f} < {f0}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_machine_gets_everything() {
        let sys = HetSystem::from_utilization(&[3.0], 0.7).unwrap();
        assert_eq!(optimized_allocation(&sys), vec![1.0]);
    }

    #[test]
    fn binary_search_equals_linear_scan_on_examples() {
        let cases: [(&[f64], f64); 5] = [
            (&[1.0, 1.0, 20.0], 0.2),
            (&[1.0, 1.5, 2.0, 3.0, 5.0, 9.0, 10.0], 0.7),
            (&[1.0, 1.0, 1.0], 0.5),
            (&[1.0, 2.0, 4.0, 8.0, 16.0], 0.1),
            (&[5.0, 5.0, 5.0, 100.0], 0.05),
        ];
        for (speeds, rho) in cases {
            let sys = HetSystem::from_utilization(speeds, rho).unwrap();
            let mut sorted = speeds.to_vec();
            sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
            assert_eq!(
                cutoff_binary_search(&sorted, sys.mu(), sys.lambda()),
                cutoff_linear_scan(&sorted, sys.mu(), sys.lambda()),
                "speeds {speeds:?} ρ={rho}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid speeds/utilization")]
    fn wrapper_rejects_bad_rho() {
        optimized_allocation_for(&[1.0], 1.5);
    }

    #[test]
    fn try_variant_guards_degenerate_inputs() {
        use hetsched_error::HetschedError;
        assert_eq!(
            try_optimized_allocation_for(&[], 0.5),
            Err(HetschedError::NoComputers)
        );
        assert_eq!(
            try_optimized_allocation_for(&[1.0, 2.0], 1.0),
            Err(HetschedError::Saturated)
        );
        assert_eq!(
            try_optimized_allocation_for(&[1.0, 2.0], 1.5),
            Err(HetschedError::Saturated)
        );
        assert!(matches!(
            try_optimized_allocation_for(&[1.0, 0.0], 0.5),
            Err(HetschedError::BadParameter(_))
        ));
        assert!(matches!(
            try_optimized_allocation_for(&[1.0, f64::NAN], 0.5),
            Err(HetschedError::BadParameter(_))
        ));
        assert!(matches!(
            try_optimized_allocation_for(&[1.0], -0.2),
            Err(HetschedError::BadParameter(_))
        ));
        // A single-computer cluster is fine: it gets everything.
        assert_eq!(try_optimized_allocation_for(&[3.0], 0.7), Ok(vec![1.0]));
    }

    #[test]
    fn try_variant_matches_panicking_wrapper() {
        let speeds = [1.0, 1.5, 2.0, 3.0, 5.0, 9.0, 10.0];
        let a = try_optimized_allocation_for(&speeds, 0.7).unwrap();
        assert_eq!(a, optimized_allocation_for(&speeds, 0.7));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The closed form always yields a feasible allocation.
        #[test]
        fn always_feasible(
            speeds in prop::collection::vec(0.1f64..50.0, 1..12),
            rho in 0.02f64..0.98,
        ) {
            let sys = HetSystem::from_utilization(&speeds, rho).unwrap();
            let a = optimized_allocation(&sys);
            prop_assert!(validate_allocation(&sys, &a), "{a:?}");
        }

        /// The binary-search cutoff agrees with the linear scan — i.e.
        /// the cut-off prefix really is contiguous (footnote 3).
        #[test]
        fn cutoff_search_agrees(
            speeds in prop::collection::vec(0.1f64..50.0, 1..12),
            rho in 0.02f64..0.98,
        ) {
            let sys = HetSystem::from_utilization(&speeds, rho).unwrap();
            let mut sorted = speeds.clone();
            sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
            prop_assert_eq!(
                cutoff_binary_search(&sorted, sys.mu(), sys.lambda()),
                cutoff_linear_scan(&sorted, sys.mu(), sys.lambda())
            );
        }

        /// The closed form never loses to proportional or equal splitting.
        #[test]
        fn never_worse_than_baselines(
            speeds in prop::collection::vec(0.1f64..50.0, 1..12),
            rho in 0.02f64..0.98,
        ) {
            let sys = HetSystem::from_utilization(&speeds, rho).unwrap();
            let f_opt = objective_f(&sys, &optimized_allocation(&sys)).unwrap();
            let f_w = objective_f(&sys, &sys.weighted_allocation()).unwrap();
            prop_assert!(f_opt <= f_w * (1.0 + 1e-9));
        }

        /// Panic-free allocation over random heterogeneous fleets and
        /// random up/down subsets (the failure-aware re-optimization
        /// path): on success the fractions sum to 1, are non-negative
        /// and contain no NaNs; otherwise the error is descriptive, not
        /// a panic.
        #[test]
        fn try_allocation_over_random_subsets(
            speeds in prop::collection::vec(0.01f64..100.0, 1..16),
            up in prop::collection::vec(prop::bool::ANY, 16),
            rho in 0.02f64..0.98,
        ) {
            // Restrict to the live subset the way a failure-aware
            // dispatcher would; the subset may be empty.
            let live: Vec<f64> = speeds
                .iter()
                .zip(&up)
                .filter_map(|(&s, &u)| u.then_some(s))
                .collect();
            // Scale rho as the re-optimizer does: the full fleet's
            // arrival rate lands on the surviving capacity.
            let total: f64 = speeds.iter().sum();
            let live_total: f64 = live.iter().sum();
            let rho_live = if live_total > 0.0 { rho * total / live_total } else { rho };
            match try_optimized_allocation_for(&live, rho_live) {
                Ok(a) => {
                    prop_assert_eq!(a.len(), live.len());
                    prop_assert!(a.iter().all(|x| x.is_finite() && *x >= 0.0), "{:?}", a);
                    let sum: f64 = a.iter().sum();
                    prop_assert!((sum - 1.0).abs() < 1e-9, "sum {}", sum);
                }
                Err(e) => {
                    // Only the expected degeneracies may be reported.
                    use hetsched_error::HetschedError;
                    prop_assert!(
                        matches!(
                            e,
                            HetschedError::NoComputers | HetschedError::Saturated
                        ),
                        "unexpected error {e:?}"
                    );
                }
            }
        }
    }
}

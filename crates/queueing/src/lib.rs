//! # hetsched-queueing — analytical models and the optimized allocation
//!
//! This crate is the mathematical core of the reproduction: §2 of the
//! paper. It models each computer as an M/M/1 queue with processor-sharing
//! service and solves the non-linear optimization problem of splitting an
//! arrival stream of rate `λ` across computers with speeds
//! `s_1 ≤ s_2 ≤ … ≤ s_n` (baseline service rate `μ`).
//!
//! The derivation chain, mirrored 1:1 in modules:
//!
//! * [`mm1`] — response-time formulas for a single M/M/1-PS queue
//!   (eqs. 1–2).
//! * [`objective`] — the system-level mean response time (eq. 3) and the
//!   objective function `F(α…) = Σ s_iμ / (s_iμ − α_iλ)` (Definition 1).
//! * [`closed_form`] — Theorem 1's interior optimum, Theorem 2's cutoff
//!   for very slow machines, and **Algorithm 1** (binary-search cutoff +
//!   closed-form fractions).
//! * [`numeric`] — an independent dual-bisection (water-filling) solver
//!   used to cross-validate the closed form in property tests.
//! * [`predict`] — analytic performance predictions for *any* allocation,
//!   used by the capacity-planning example and the analytic-validation
//!   integration test.
//!
//! ```
//! use hetsched_queueing::{HetSystem, closed_form, objective};
//!
//! // 2 fast (speed 10) + 2 slow (speed 1) machines at 50% utilization.
//! let sys = HetSystem::from_utilization(&[1.0, 1.0, 10.0, 10.0], 0.5).unwrap();
//! let optimized = closed_form::optimized_allocation(&sys);
//! let weighted = sys.weighted_allocation();
//! // The optimized scheme strictly beats proportional splitting:
//! let f_opt = objective::objective_f(&sys, &optimized).unwrap();
//! let f_w = objective::objective_f(&sys, &weighted).unwrap();
//! assert!(f_opt < f_w);
//! // ... by starving the slow machines:
//! assert!(optimized[0] < weighted[0]);
//! ```

#![warn(missing_docs)]

pub mod closed_form;
pub mod mg1;
pub mod mm1;
pub mod numeric;
pub mod objective;
pub mod predict;
pub mod system;

pub use mg1::Mg1;
pub use mm1::Mm1Ps;
pub use predict::AllocationReport;
pub use system::{HetSystem, SystemError};

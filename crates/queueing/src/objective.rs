//! The optimization objective (Definition 1) and system-level metrics
//! (eq. 3).
//!
//! For an allocation `{α_i}` the system's mean response time is
//!
//! ```text
//! T̄ = Σ_i α_i / (s_iμ − α_iλ)                               (eq. 3)
//!    = −n/λ + (1/λ) Σ_i s_iμ / (s_iμ − α_iλ)
//! ```
//!
//! so minimizing T̄ is equivalent to minimizing the paper's objective
//!
//! ```text
//! F(α_1…α_n) = Σ_i s_iμ / (s_iμ − α_iλ)                      (Def. 1)
//! ```
//!
//! and since `R̄ = μ T̄`, the same allocation also minimizes the mean
//! response ratio.

use crate::system::HetSystem;
use hetsched_error::HetschedError;

/// Evaluates the objective `F(α…) = Σ s_iμ / (s_iμ − α_iλ)`.
///
/// Returns `None` if any computer would be saturated (`α_iλ ≥ s_iμ`) or
/// the allocation length mismatches.
pub fn objective_f(sys: &HetSystem, alphas: &[f64]) -> Option<f64> {
    if alphas.len() != sys.len() {
        return None;
    }
    let mut f = 0.0;
    for (&a, &s) in alphas.iter().zip(sys.speeds()) {
        let cap = s * sys.mu();
        let denom = cap - a * sys.lambda();
        if denom <= 0.0 {
            return None;
        }
        f += cap / denom;
    }
    Some(f)
}

/// The analytic lower bound of `F` from Theorem 1 (no non-negativity
/// cutoff): `(Σ √(s_jμ))² / (Σ s_jμ − λ)`.
pub fn theorem1_min_value(sys: &HetSystem) -> f64 {
    let sqrt_sum: f64 = sys.speeds().iter().map(|&s| (s * sys.mu()).sqrt()).sum();
    sqrt_sum * sqrt_sum / (sys.capacity() - sys.lambda())
}

/// The minimum of `F` when machines `1..=m` (ascending speed order, 0 ≤ m)
/// are cut off to zero: each contributes 1, and Theorem 1 applies to the
/// remainder.
///
/// `sorted_speeds` must be ascending.
///
/// # Panics
/// Panics if every machine is cut off or the remainder is saturated.
/// Use [`try_cutoff_min_value`] for a panic-free variant.
pub fn cutoff_min_value(sorted_speeds: &[f64], mu: f64, lambda: f64, m: usize) -> f64 {
    assert!(m < sorted_speeds.len(), "cannot cut off every machine");
    let rest = &sorted_speeds[m..];
    let cap: f64 = rest.iter().sum::<f64>() * mu;
    assert!(lambda < cap, "remaining machines saturated");
    let sqrt_sum: f64 = rest.iter().map(|&s| (s * mu).sqrt()).sum();
    m as f64 + sqrt_sum * sqrt_sum / (cap - lambda)
}

/// Panic-free variant of [`cutoff_min_value`].
///
/// # Errors
/// * [`HetschedError::NoComputers`] — `m` cuts off every machine (the
///   all-servers-failed subset);
/// * [`HetschedError::Saturated`] — the surviving machines cannot absorb
///   `λ`.
pub fn try_cutoff_min_value(
    sorted_speeds: &[f64],
    mu: f64,
    lambda: f64,
    m: usize,
) -> Result<f64, HetschedError> {
    if m >= sorted_speeds.len() {
        return Err(HetschedError::NoComputers);
    }
    let rest = &sorted_speeds[m..];
    let cap: f64 = rest.iter().sum::<f64>() * mu;
    if lambda >= cap {
        return Err(HetschedError::Saturated);
    }
    Ok(cutoff_min_value(sorted_speeds, mu, lambda, m))
}

/// The gradient of `F` with respect to `α_i`:
/// `∂F/∂α_i = s_iμλ / (s_iμ − α_iλ)²`. Used by the numeric solver's KKT
/// check in tests.
pub fn objective_gradient(sys: &HetSystem, alphas: &[f64]) -> Option<Vec<f64>> {
    if alphas.len() != sys.len() {
        return None;
    }
    let mut g = Vec::with_capacity(alphas.len());
    for (&a, &s) in alphas.iter().zip(sys.speeds()) {
        let cap = s * sys.mu();
        let denom = cap - a * sys.lambda();
        if denom <= 0.0 {
            return None;
        }
        g.push(cap * sys.lambda() / (denom * denom));
    }
    Some(g)
}

/// System mean response time for an allocation (eq. 3):
/// `T̄ = Σ α_i / (s_iμ − α_iλ)`. `None` on saturation/mismatch.
pub fn mean_response_time(sys: &HetSystem, alphas: &[f64]) -> Option<f64> {
    if alphas.len() != sys.len() {
        return None;
    }
    let mut t = 0.0;
    for (&a, &s) in alphas.iter().zip(sys.speeds()) {
        if a == 0.0 {
            continue; // an unused machine contributes no jobs
        }
        let denom = s * sys.mu() - a * sys.lambda();
        if denom <= 0.0 || a < 0.0 {
            return None;
        }
        t += a / denom;
    }
    Some(t)
}

/// System mean response ratio: `R̄ = μ T̄`.
pub fn mean_response_ratio(sys: &HetSystem, alphas: &[f64]) -> Option<f64> {
    mean_response_time(sys, alphas).map(|t| t * sys.mu())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys2() -> HetSystem {
        HetSystem::new(&[1.0, 2.0], 1.0, 1.5).unwrap()
    }

    #[test]
    fn objective_matches_hand_computation() {
        let sys = sys2();
        // α = (1/3, 2/3): F = 1/(1−0.5) + 2/(2−1) = 2 + 2 = 4.
        let f = objective_f(&sys, &[1.0 / 3.0, 2.0 / 3.0]).unwrap();
        assert!((f - 4.0).abs() < 1e-12);
    }

    #[test]
    fn objective_rejects_saturating_allocation() {
        let sys = sys2();
        // α_1 = 0.7 ⇒ load 1.05 > capacity 1.
        assert_eq!(objective_f(&sys, &[0.7, 0.3]), None);
    }

    #[test]
    fn objective_rejects_length_mismatch() {
        assert_eq!(objective_f(&sys2(), &[1.0]), None);
    }

    #[test]
    fn mean_response_time_matches_identity() {
        // eq. 3 rewrite: T̄ = −n/λ + F/λ.
        let sys = sys2();
        let alphas = [0.25, 0.75];
        let t = mean_response_time(&sys, &alphas).unwrap();
        let f = objective_f(&sys, &alphas).unwrap();
        let identity = -(sys.len() as f64) / sys.lambda() + f / sys.lambda();
        assert!((t - identity).abs() < 1e-12, "{t} vs {identity}");
    }

    #[test]
    fn ratio_is_mu_times_time() {
        let sys = HetSystem::new(&[1.0, 4.0], 2.0, 3.0).unwrap();
        let alphas = [0.2, 0.8];
        let t = mean_response_time(&sys, &alphas).unwrap();
        let r = mean_response_ratio(&sys, &alphas).unwrap();
        assert!((r - 2.0 * t).abs() < 1e-12);
    }

    #[test]
    fn zero_alpha_machine_contributes_one_to_f() {
        let sys = sys2();
        let f = objective_f(&sys, &[0.0, 1.0]).unwrap();
        // F = 1 + 2/(2−1.5) = 1 + 4 = 5.
        assert!((f - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_alpha_machine_excluded_from_response_time() {
        let sys = sys2();
        // Only the fast machine serves: T̄ = 1/(2−1.5) = 2.
        let t = mean_response_time(&sys, &[0.0, 1.0]).unwrap();
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn theorem1_bound_is_below_any_interior_allocation() {
        let sys = HetSystem::from_utilization(&[1.0, 2.0, 5.0], 0.6).unwrap();
        let bound = theorem1_min_value(&sys);
        for alphas in [
            sys.weighted_allocation(),
            sys.equal_allocation(),
            vec![0.1, 0.2, 0.7],
        ] {
            // Allocations that saturate a machine (equal share can, on a
            // skewed system) are simply infeasible — skip them.
            let Some(f) = objective_f(&sys, &alphas) else {
                continue;
            };
            assert!(f >= bound - 1e-9, "F={f} below Theorem-1 bound {bound}");
        }
    }

    #[test]
    fn cutoff_min_value_counts_cut_machines() {
        let speeds = [1.0, 2.0, 4.0];
        let v0 = cutoff_min_value(&speeds, 1.0, 2.0, 0);
        let v1 = cutoff_min_value(&speeds, 1.0, 2.0, 1);
        // m = 1: 1 + (√2+√4)²/(6−2)
        let sqrt_sum = 2.0f64.sqrt() + 2.0;
        assert!((v1 - (1.0 + sqrt_sum * sqrt_sum / 4.0)).abs() < 1e-12);
        assert!(v0 > 0.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let sys = HetSystem::from_utilization(&[1.0, 3.0, 7.0], 0.7).unwrap();
        let alphas = [0.1, 0.3, 0.6];
        let g = objective_gradient(&sys, &alphas).unwrap();
        let h = 1e-7;
        for i in 0..3 {
            let mut up = alphas;
            up[i] += h;
            let df = (objective_f(&sys, &up).unwrap() - objective_f(&sys, &alphas).unwrap()) / h;
            assert!(
                (g[i] - df).abs() / df < 1e-4,
                "component {i}: analytic {} vs numeric {df}",
                g[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot cut off every machine")]
    fn cutoff_rejects_cutting_all() {
        cutoff_min_value(&[1.0], 1.0, 0.5, 1);
    }

    #[test]
    fn try_cutoff_reports_degenerate_subsets() {
        assert_eq!(
            try_cutoff_min_value(&[1.0], 1.0, 0.5, 1),
            Err(HetschedError::NoComputers)
        );
        assert_eq!(
            try_cutoff_min_value(&[1.0, 2.0], 1.0, 2.5, 1),
            Err(HetschedError::Saturated)
        );
        let ok = try_cutoff_min_value(&[1.0, 2.0, 4.0], 1.0, 2.0, 1).unwrap();
        assert_eq!(ok, cutoff_min_value(&[1.0, 2.0, 4.0], 1.0, 2.0, 1));
    }
}

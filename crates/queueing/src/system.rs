//! The heterogeneous system description.
//!
//! A [`HetSystem`] is the tuple `(s_1…s_n, μ, λ)` of Figure 1 of the
//! paper: `n` computers with relative speeds `s_i > 0`, a baseline job
//! service rate `μ` (so computer `i` serves at rate `s_iμ`), and a total
//! Poisson/renewal arrival rate `λ`. The system must not be saturated:
//! `λ < μ Σ s_i`.

use serde::{Deserialize, Serialize};

/// Validation errors for system parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SystemError {
    /// The speed list was empty.
    NoComputers,
    /// A speed, `μ`, or `λ` was non-positive or non-finite.
    BadParameter,
    /// `λ ≥ μ Σ s_i`: the whole system is overloaded and no allocation
    /// can stabilize it.
    Saturated,
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::NoComputers => write!(f, "system has no computers"),
            SystemError::BadParameter => {
                write!(f, "speeds, μ and λ must be positive and finite")
            }
            SystemError::Saturated => {
                write!(
                    f,
                    "arrival rate saturates the aggregate capacity (λ ≥ μ·Σs)"
                )
            }
        }
    }
}

impl std::error::Error for SystemError {}

impl From<SystemError> for hetsched_error::HetschedError {
    fn from(e: SystemError) -> Self {
        use hetsched_error::HetschedError;
        match e {
            SystemError::NoComputers => HetschedError::NoComputers,
            SystemError::BadParameter => HetschedError::BadParameter(e.to_string()),
            SystemError::Saturated => HetschedError::Saturated,
        }
    }
}

/// A network of heterogeneous computers fed by a central scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HetSystem {
    speeds: Vec<f64>,
    mu: f64,
    lambda: f64,
}

impl HetSystem {
    /// Creates a system from explicit speeds, baseline rate and arrival
    /// rate.
    pub fn new(speeds: &[f64], mu: f64, lambda: f64) -> Result<Self, SystemError> {
        if speeds.is_empty() {
            return Err(SystemError::NoComputers);
        }
        let all_ok = speeds.iter().all(|&s| s.is_finite() && s > 0.0)
            && mu.is_finite()
            && mu > 0.0
            && lambda.is_finite()
            && lambda > 0.0;
        if !all_ok {
            return Err(SystemError::BadParameter);
        }
        let capacity: f64 = speeds.iter().sum::<f64>() * mu;
        if lambda >= capacity {
            return Err(SystemError::Saturated);
        }
        Ok(HetSystem {
            speeds: speeds.to_vec(),
            mu,
            lambda,
        })
    }

    /// Creates a system from a target overall utilization
    /// `ρ = λ / (μ Σ s_i)` with `μ = 1`.
    ///
    /// The paper observes (§2.3) that the optimized allocation depends on
    /// the parameters only through `ρ` and the speeds, so this is the
    /// natural constructor for experiments.
    pub fn from_utilization(speeds: &[f64], rho: f64) -> Result<Self, SystemError> {
        if !(rho.is_finite() && rho > 0.0 && rho < 1.0) {
            return Err(SystemError::BadParameter);
        }
        if speeds.is_empty() {
            return Err(SystemError::NoComputers);
        }
        let total: f64 = speeds.iter().sum();
        HetSystem::new(speeds, 1.0, rho * total)
    }

    /// Relative computer speeds.
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// Number of computers.
    pub fn len(&self) -> usize {
        self.speeds.len()
    }

    /// Whether the system has no computers (never true for a constructed
    /// system; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.speeds.is_empty()
    }

    /// Baseline service rate `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Total arrival rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Aggregate service capacity `μ Σ s_i`.
    pub fn capacity(&self) -> f64 {
        self.mu * self.total_speed()
    }

    /// Sum of relative speeds.
    pub fn total_speed(&self) -> f64 {
        self.speeds.iter().sum()
    }

    /// Overall utilization `ρ = λ / (μ Σ s_i)`.
    pub fn utilization(&self) -> f64 {
        self.lambda / self.capacity()
    }

    /// A copy of the system with a different arrival rate (used by load
    /// sweeps).
    pub fn with_lambda(&self, lambda: f64) -> Result<Self, SystemError> {
        HetSystem::new(&self.speeds, self.mu, lambda)
    }

    /// The *simple weighted* allocation: `α_i = s_i / Σ s_j` (§2.1).
    pub fn weighted_allocation(&self) -> Vec<f64> {
        let total = self.total_speed();
        self.speeds.iter().map(|s| s / total).collect()
    }

    /// The *equal share* allocation: `α_i = 1/n` — the speed-blind
    /// baseline that plain round-robin implements.
    pub fn equal_allocation(&self) -> Vec<f64> {
        vec![1.0 / self.len() as f64; self.len()]
    }
}

/// Checks that an allocation vector is a valid probability vector that
/// keeps every computer of `sys` unsaturated: `Σα = 1`, `α_i ≥ 0`,
/// `α_iλ < s_iμ`.
pub fn validate_allocation(sys: &HetSystem, alphas: &[f64]) -> bool {
    if alphas.len() != sys.len() {
        return false;
    }
    let sum: f64 = alphas.iter().sum();
    if (sum - 1.0).abs() > 1e-9 {
        return false;
    }
    alphas
        .iter()
        .zip(sys.speeds())
        .all(|(&a, &s)| a >= -1e-12 && a * sys.lambda() < s * sys.mu())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let sys = HetSystem::new(&[1.0, 2.0, 3.0], 2.0, 5.0).unwrap();
        assert_eq!(sys.len(), 3);
        assert_eq!(sys.total_speed(), 6.0);
        assert_eq!(sys.capacity(), 12.0);
        assert!((sys.utilization() - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn from_utilization_round_trips() {
        let sys = HetSystem::from_utilization(&[1.0, 1.5, 10.0], 0.7).unwrap();
        assert!((sys.utilization() - 0.7).abs() < 1e-12);
        assert_eq!(sys.mu(), 1.0);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(HetSystem::new(&[], 1.0, 0.5), Err(SystemError::NoComputers));
        assert_eq!(
            HetSystem::from_utilization(&[], 0.5),
            Err(SystemError::NoComputers)
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(
            HetSystem::new(&[1.0, -1.0], 1.0, 0.5),
            Err(SystemError::BadParameter)
        );
        assert_eq!(
            HetSystem::new(&[1.0], 0.0, 0.5),
            Err(SystemError::BadParameter)
        );
        assert_eq!(
            HetSystem::new(&[1.0], 1.0, f64::NAN),
            Err(SystemError::BadParameter)
        );
        assert_eq!(
            HetSystem::from_utilization(&[1.0], 1.0),
            Err(SystemError::BadParameter)
        );
    }

    #[test]
    fn rejects_saturation() {
        assert_eq!(
            HetSystem::new(&[1.0, 1.0], 1.0, 2.0),
            Err(SystemError::Saturated)
        );
        assert!(HetSystem::new(&[1.0, 1.0], 1.0, 1.999).is_ok());
    }

    #[test]
    fn weighted_allocation_is_proportional() {
        let sys = HetSystem::from_utilization(&[1.0, 3.0], 0.5).unwrap();
        let w = sys.weighted_allocation();
        assert!((w[0] - 0.25).abs() < 1e-12);
        assert!((w[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn equal_allocation_is_uniform() {
        let sys = HetSystem::from_utilization(&[1.0, 5.0, 9.0, 10.0], 0.5).unwrap();
        let e = sys.equal_allocation();
        assert!(e.iter().all(|&a| (a - 0.25).abs() < 1e-12));
    }

    #[test]
    fn validate_allocation_checks_everything() {
        let sys = HetSystem::from_utilization(&[1.0, 1.0], 0.9).unwrap();
        assert!(validate_allocation(&sys, &[0.5, 0.5]));
        assert!(!validate_allocation(&sys, &[0.6, 0.6])); // sum ≠ 1
        assert!(!validate_allocation(&sys, &[1.0, 0.0])); // saturates c1: 1·1.8 ≥ 1
        assert!(!validate_allocation(&sys, &[-0.1, 1.1])); // negative
        assert!(!validate_allocation(&sys, &[1.0])); // wrong length
    }

    #[test]
    fn with_lambda_rescales() {
        let sys = HetSystem::from_utilization(&[2.0, 2.0], 0.5).unwrap();
        let heavier = sys.with_lambda(3.0).unwrap();
        assert!((heavier.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(heavier.speeds(), sys.speeds());
        assert_eq!(sys.with_lambda(5.0), Err(SystemError::Saturated));
    }

    #[test]
    fn error_display() {
        assert!(SystemError::Saturated.to_string().contains("λ ≥ μ·Σs"));
        assert!(SystemError::NoComputers
            .to_string()
            .contains("no computers"));
    }
}

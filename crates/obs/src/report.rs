//! The exportable time-series report and kernel counter mirror.

use hetsched_desim::FelStats;
use hetsched_error::HetschedError;
use serde::{Deserialize, Serialize};

/// Serializable mirror of the event kernel's lifetime traffic counters.
///
/// `hetsched-desim` is dependency-free, so its
/// [`FelStats`](hetsched_desim::FelStats) cannot derive serde; this is
/// the serde-able view that lands in run reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelCounters {
    /// Total events ever scheduled.
    pub scheduled: u64,
    /// Total events ever delivered.
    pub popped: u64,
    /// Total events cancelled while still pending.
    pub cancelled: u64,
    /// Largest live event population ever pending at once.
    pub high_water: u64,
    /// Bucket-array resizes (calendar backend only; zero elsewhere).
    pub resizes: u64,
}

impl From<FelStats> for KernelCounters {
    fn from(s: FelStats) -> Self {
        KernelCounters {
            scheduled: s.scheduled,
            popped: s.popped,
            cancelled: s.cancelled,
            high_water: s.high_water,
            resizes: s.resizes,
        }
    }
}

/// A columnar time series: one row per sampling window, one column per
/// probe, plus the kernel counters captured at the end of the run.
///
/// Stored columnar (names once, rows as bare `f64` vectors) so a
/// paper-scale run with tens of thousands of windows stays compact in
/// `RunStats` JSON; the exporters denormalize to the usual
/// one-object-per-line JSONL / header-plus-rows CSV shapes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Length of one sampling window in simulated seconds.
    pub sample_interval: f64,
    /// Column names in probe registration order.
    pub columns: Vec<String>,
    /// Window-boundary timestamps, strictly increasing.
    pub times: Vec<f64>,
    /// One row of probe values per timestamp.
    pub rows: Vec<Vec<f64>>,
    /// Event-kernel traffic counters at the end of the run.
    pub kernel: KernelCounters,
}

impl ObsReport {
    /// Number of sampled windows.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether no window was ever sampled.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The values of one column by name, if present.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }

    /// Renders the series as JSON Lines: one flat object per window,
    /// timestamp under `"t"`, then every column by name.
    ///
    /// The writer is hand-rolled (like the bench artifact writers):
    /// Rust's `f64` Display is a valid JSON number for every finite
    /// value, and exporters must keep working even where serde_json's
    /// runtime is stubbed out.
    ///
    /// Fails with [`HetschedError::Serialization`] if any value is not
    /// a finite number (JSON has no NaN/∞).
    pub fn to_jsonl(&self) -> Result<String, HetschedError> {
        fn push_num(out: &mut String, label: &str, x: f64) -> Result<(), HetschedError> {
            if !x.is_finite() {
                return Err(HetschedError::Serialization(format!(
                    "non-finite value {x} in column '{label}'"
                )));
            }
            out.push_str(&x.to_string());
            Ok(())
        }
        fn push_str(out: &mut String, s: &str) {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        let mut out = String::new();
        for (t, row) in self.times.iter().zip(&self.rows) {
            out.push_str("{\"t\":");
            push_num(&mut out, "t", *t)?;
            for (name, v) in self.columns.iter().zip(row) {
                out.push(',');
                push_str(&mut out, name);
                out.push(':');
                push_num(&mut out, name, *v)?;
            }
            out.push_str("}\n");
        }
        Ok(out)
    }

    /// Renders the series as CSV with a `t,<columns...>` header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (t, row) in self.times.iter().zip(&self.rows) {
            out.push_str(&t.to_string());
            for v in row {
                out.push(',');
                out.push_str(&v.to_string());
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ObsReport {
        ObsReport {
            sample_interval: 120.0,
            columns: vec!["qlen[0]".into(), "util[0]".into()],
            times: vec![120.0, 240.0],
            rows: vec![vec![3.0, 0.5], vec![1.0, 0.25]],
            kernel: KernelCounters {
                scheduled: 10,
                popped: 8,
                cancelled: 1,
                high_water: 4,
                resizes: 0,
            },
        }
    }

    #[test]
    fn jsonl_is_one_flat_object_per_window() {
        let jsonl = report().to_jsonl().expect("finite values");
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines,
            vec![
                r#"{"t":120,"qlen[0]":3,"util[0]":0.5}"#,
                r#"{"t":240,"qlen[0]":1,"util[0]":0.25}"#,
            ]
        );
    }

    #[test]
    fn jsonl_escapes_awkward_column_names() {
        let r = ObsReport {
            sample_interval: 1.0,
            columns: vec!["a\"b\\c".into()],
            times: vec![1.0],
            rows: vec![vec![2.0]],
            kernel: KernelCounters::default(),
        };
        let jsonl = r.to_jsonl().expect("finite values");
        assert_eq!(jsonl, "{\"t\":1,\"a\\\"b\\\\c\":2}\n");
    }

    #[test]
    fn jsonl_rejects_non_finite_values() {
        let mut r = report();
        r.rows[1][0] = f64::NAN;
        let err = r.to_jsonl().expect_err("NaN must not serialize");
        assert!(matches!(err, HetschedError::Serialization(_)));
        assert!(err.to_string().contains("qlen[0]"), "names the column");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,qlen[0],util[0]");
        assert_eq!(lines[1], "120,3,0.5");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn column_lookup_by_name() {
        let r = report();
        assert_eq!(r.column("qlen[0]"), Some(vec![3.0, 1.0]));
        assert_eq!(r.column("missing"), None);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn kernel_counters_mirror_fel_stats() {
        let fel = FelStats {
            scheduled: 5,
            popped: 3,
            cancelled: 1,
            high_water: 2,
            resizes: 7,
        };
        let k = KernelCounters::from(fel);
        assert_eq!(k.scheduled, 5);
        assert_eq!(k.popped, 3);
        assert_eq!(k.cancelled, 1);
        assert_eq!(k.high_water, 2);
        assert_eq!(k.resizes, 7);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        let json = serde_json::to_string(&r).expect("serializes");
        let back: ObsReport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, r);
    }
}

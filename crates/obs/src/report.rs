//! The exportable time-series report and kernel counter mirror.

use hetsched_desim::FelStats;
use hetsched_error::HetschedError;
use serde::{Deserialize, Serialize};

/// Serializable mirror of the event kernel's lifetime traffic counters.
///
/// `hetsched-desim` is dependency-free, so its
/// [`FelStats`](hetsched_desim::FelStats) cannot derive serde; this is
/// the serde-able view that lands in run reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelCounters {
    /// Total events ever scheduled.
    pub scheduled: u64,
    /// Total events ever delivered.
    pub popped: u64,
    /// Total events cancelled while still pending.
    pub cancelled: u64,
    /// Largest live event population ever pending at once.
    pub high_water: u64,
    /// Bucket-array resizes (calendar backend only; zero elsewhere).
    pub resizes: u64,
}

impl From<FelStats> for KernelCounters {
    fn from(s: FelStats) -> Self {
        KernelCounters {
            scheduled: s.scheduled,
            popped: s.popped,
            cancelled: s.cancelled,
            high_water: s.high_water,
            resizes: s.resizes,
        }
    }
}

/// A columnar time series: one row per sampling window, one column per
/// probe, plus the kernel counters captured at the end of the run.
///
/// Stored columnar (names once, rows as bare `f64` vectors) so a
/// paper-scale run with tens of thousands of windows stays compact in
/// `RunStats` JSON; the exporters denormalize to the usual
/// one-object-per-line JSONL / header-plus-rows CSV shapes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Length of one sampling window in simulated seconds.
    pub sample_interval: f64,
    /// Column names in probe registration order.
    pub columns: Vec<String>,
    /// Window-boundary timestamps, strictly increasing.
    pub times: Vec<f64>,
    /// One row of probe values per timestamp.
    pub rows: Vec<Vec<f64>>,
    /// Event-kernel traffic counters at the end of the run.
    pub kernel: KernelCounters,
}

impl ObsReport {
    /// Number of sampled windows.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether no window was ever sampled.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The values of one column by name, if present.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }

    /// Collapses per-server indexed columns (`prefix[0]`, `prefix[1]`,
    /// …) into four fleet-summary columns `prefix_min` / `prefix_mean` /
    /// `prefix_max` / `prefix_p99` per prefix, computed row by row.
    ///
    /// This is the observability side of the `per_server: summary`
    /// switch: a 10,000-server run would otherwise carry 30,000 columns
    /// per sampling window. Prefixes with no indexed column are left
    /// untouched; non-indexed columns keep their order, and the summary
    /// columns append in prefix order.
    pub fn collapse_indexed_columns(&mut self, prefixes: &[&str]) {
        // Partition column indices: per-prefix indexed groups vs. kept.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); prefixes.len()];
        let mut kept: Vec<usize> = Vec::new();
        'cols: for (ci, name) in self.columns.iter().enumerate() {
            for (pi, p) in prefixes.iter().enumerate() {
                if name.len() > p.len() + 2
                    && name.starts_with(p)
                    && name.as_bytes()[p.len()] == b'['
                    && name.ends_with(']')
                {
                    groups[pi].push(ci);
                    continue 'cols;
                }
            }
            kept.push(ci);
        }
        if groups.iter().all(|g| g.is_empty()) {
            return;
        }
        let mut columns: Vec<String> = kept.iter().map(|&ci| self.columns[ci].clone()).collect();
        for (pi, g) in groups.iter().enumerate() {
            if !g.is_empty() {
                for suffix in ["min", "mean", "max", "p99"] {
                    columns.push(format!("{}_{suffix}", prefixes[pi]));
                }
            }
        }
        let mut scratch: Vec<f64> = Vec::new();
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut out: Vec<f64> = kept.iter().map(|&ci| row[ci]).collect();
                for g in &groups {
                    if g.is_empty() {
                        continue;
                    }
                    scratch.clear();
                    scratch.extend(g.iter().map(|&ci| row[ci]));
                    scratch.sort_by(f64::total_cmp);
                    let n = scratch.len();
                    let rank = ((0.99 * n as f64).ceil() as usize).clamp(1, n);
                    out.push(scratch[0]);
                    out.push(scratch.iter().sum::<f64>() / n as f64);
                    out.push(scratch[n - 1]);
                    out.push(scratch[rank - 1]);
                }
                out
            })
            .collect();
        self.columns = columns;
        self.rows = rows;
    }

    /// Renders the series as JSON Lines: one flat object per window,
    /// timestamp under `"t"`, then every column by name.
    ///
    /// The writer is hand-rolled (like the bench artifact writers):
    /// Rust's `f64` Display is a valid JSON number for every finite
    /// value, and exporters must keep working even where serde_json's
    /// runtime is stubbed out.
    ///
    /// Fails with [`HetschedError::Serialization`] if any value is not
    /// a finite number (JSON has no NaN/∞).
    pub fn to_jsonl(&self) -> Result<String, HetschedError> {
        fn push_num(out: &mut String, label: &str, x: f64) -> Result<(), HetschedError> {
            if !x.is_finite() {
                return Err(HetschedError::Serialization(format!(
                    "non-finite value {x} in column '{label}'"
                )));
            }
            out.push_str(&x.to_string());
            Ok(())
        }
        fn push_str(out: &mut String, s: &str) {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        let mut out = String::new();
        for (t, row) in self.times.iter().zip(&self.rows) {
            out.push_str("{\"t\":");
            push_num(&mut out, "t", *t)?;
            for (name, v) in self.columns.iter().zip(row) {
                out.push(',');
                push_str(&mut out, name);
                out.push(':');
                push_num(&mut out, name, *v)?;
            }
            out.push_str("}\n");
        }
        Ok(out)
    }

    /// Renders the series as CSV with a `t,<columns...>` header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (t, row) in self.times.iter().zip(&self.rows) {
            out.push_str(&t.to_string());
            for v in row {
                out.push(',');
                out.push_str(&v.to_string());
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ObsReport {
        ObsReport {
            sample_interval: 120.0,
            columns: vec!["qlen[0]".into(), "util[0]".into()],
            times: vec![120.0, 240.0],
            rows: vec![vec![3.0, 0.5], vec![1.0, 0.25]],
            kernel: KernelCounters {
                scheduled: 10,
                popped: 8,
                cancelled: 1,
                high_water: 4,
                resizes: 0,
            },
        }
    }

    #[test]
    fn jsonl_is_one_flat_object_per_window() {
        let jsonl = report().to_jsonl().expect("finite values");
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines,
            vec![
                r#"{"t":120,"qlen[0]":3,"util[0]":0.5}"#,
                r#"{"t":240,"qlen[0]":1,"util[0]":0.25}"#,
            ]
        );
    }

    #[test]
    fn jsonl_escapes_awkward_column_names() {
        let r = ObsReport {
            sample_interval: 1.0,
            columns: vec!["a\"b\\c".into()],
            times: vec![1.0],
            rows: vec![vec![2.0]],
            kernel: KernelCounters::default(),
        };
        let jsonl = r.to_jsonl().expect("finite values");
        assert_eq!(jsonl, "{\"t\":1,\"a\\\"b\\\\c\":2}\n");
    }

    #[test]
    fn jsonl_rejects_non_finite_values() {
        let mut r = report();
        r.rows[1][0] = f64::NAN;
        let err = r.to_jsonl().expect_err("NaN must not serialize");
        assert!(matches!(err, HetschedError::Serialization(_)));
        assert!(err.to_string().contains("qlen[0]"), "names the column");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,qlen[0],util[0]");
        assert_eq!(lines[1], "120,3,0.5");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn column_lookup_by_name() {
        let r = report();
        assert_eq!(r.column("qlen[0]"), Some(vec![3.0, 1.0]));
        assert_eq!(r.column("missing"), None);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn collapse_replaces_indexed_columns_with_summaries() {
        let mut r = ObsReport {
            sample_interval: 1.0,
            columns: vec![
                "arrivals".into(),
                "qlen[0]".into(),
                "qlen[1]".into(),
                "qlen[2]".into(),
                "up[0]".into(),
                "up[1]".into(),
                "up[2]".into(),
                "p95_ratio".into(),
            ],
            times: vec![1.0, 2.0],
            rows: vec![
                vec![9.0, 3.0, 1.0, 2.0, 1.0, 1.0, 0.0, 1.5],
                vec![7.0, 0.0, 4.0, 4.0, 1.0, 0.0, 0.0, 2.5],
            ],
            kernel: KernelCounters::default(),
        };
        r.collapse_indexed_columns(&["qlen", "util", "up"]);
        assert_eq!(
            r.columns,
            vec![
                "arrivals",
                "p95_ratio",
                "qlen_min",
                "qlen_mean",
                "qlen_max",
                "qlen_p99",
                "up_min",
                "up_mean",
                "up_max",
                "up_p99",
            ]
        );
        let third = 2.0 / 3.0;
        assert_eq!(
            r.rows[0],
            vec![9.0, 1.5, 1.0, 2.0, 3.0, 3.0, 0.0, third, 1.0, 1.0]
        );
        assert_eq!(
            r.rows[1],
            vec![7.0, 2.5, 0.0, 8.0 / 3.0, 4.0, 4.0, 0.0, 1.0 / 3.0, 1.0, 1.0]
        );
    }

    #[test]
    fn collapse_without_indexed_columns_is_a_noop() {
        let mut r = report();
        let before = r.clone();
        // "qlen[0]" matches, so use prefixes that don't appear.
        r.collapse_indexed_columns(&["latency", "wait"]);
        assert_eq!(r, before);
    }

    #[test]
    fn kernel_counters_mirror_fel_stats() {
        let fel = FelStats {
            scheduled: 5,
            popped: 3,
            cancelled: 1,
            high_water: 2,
            resizes: 7,
        };
        let k = KernelCounters::from(fel);
        assert_eq!(k.scheduled, 5);
        assert_eq!(k.popped, 3);
        assert_eq!(k.cancelled, 1);
        assert_eq!(k.high_water, 2);
        assert_eq!(k.resizes, 7);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        let json = serde_json::to_string(&r).expect("serializes");
        let back: ObsReport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, r);
    }
}

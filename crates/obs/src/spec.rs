//! The observability sampling contract.

use hetsched_error::HetschedError;
use serde::{Deserialize, Serialize};

/// The paper's Fig. 2 sampling interval (seconds): the default window.
pub const DEFAULT_SAMPLE_INTERVAL: f64 = 120.0;

/// Configuration of the run-level observability plane.
///
/// Attached to a cluster configuration as `Option<ObsSpec>`: `None`
/// (the serde default) means observability is fully disabled and the
/// simulation carries no probe state at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsSpec {
    /// Length of one sampling window in simulated seconds.
    ///
    /// Windows start at `t = 0` and close at `k · sample_interval`
    /// using the same arithmetic as the Fig. 2 deviation tracker, so a
    /// deviation probe sampled at the deviation interval reproduces
    /// `metrics::DeviationTracker` exactly.
    #[serde(default = "default_interval")]
    pub sample_interval: f64,
}

fn default_interval() -> f64 {
    DEFAULT_SAMPLE_INTERVAL
}

impl Default for ObsSpec {
    fn default() -> Self {
        ObsSpec {
            sample_interval: DEFAULT_SAMPLE_INTERVAL,
        }
    }
}

impl ObsSpec {
    /// A spec sampling every `sample_interval` simulated seconds.
    pub fn every(sample_interval: f64) -> Self {
        ObsSpec { sample_interval }
    }

    /// Checks the spec describes a usable sampling plan.
    pub fn validate(&self) -> Result<(), HetschedError> {
        if !self.sample_interval.is_finite() || self.sample_interval <= 0.0 {
            return Err(HetschedError::BadParameter(format!(
                "obs.sample_interval must be positive and finite, got {}",
                self.sample_interval
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_fig2_interval() {
        assert_eq!(ObsSpec::default().sample_interval, 120.0);
    }

    #[test]
    fn validate_rejects_degenerate_intervals() {
        assert!(ObsSpec::every(120.0).validate().is_ok());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(ObsSpec::every(bad).validate().is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn empty_json_object_uses_default_interval() {
        let spec: ObsSpec = serde_json::from_str("{}").expect("deserializes");
        assert_eq!(spec, ObsSpec::default());
    }

    #[test]
    fn round_trips_through_json() {
        let spec = ObsSpec::every(30.0);
        let json = serde_json::to_string(&spec).expect("serializes");
        let back: ObsSpec = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, spec);
    }
}

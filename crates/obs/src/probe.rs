//! The probe registry: named read-only samplers over a model view.
//!
//! A [`Probe`] observes one scalar quantity. It is generic over a view
//! type `V` that the *model* assembles at each sampling boundary — the
//! registry never touches the model directly, which is what makes the
//! non-perturbation invariant structural: a probe physically cannot
//! schedule events or draw random numbers, because all it ever receives
//! is an immutable snapshot.
//!
//! Probes may keep private state between windows (e.g. the utilization
//! probe remembers the busy integral at the previous boundary to
//! difference it), and are told when the model discards its warmup
//! history via [`Probe::on_reset`].

use crate::report::{KernelCounters, ObsReport};

/// A named, read-only sampler producing one value per window.
///
/// `Send` is required so a model carrying a registry can run on the
/// sweep pool's worker threads.
pub trait Probe<V>: Send {
    /// Column name in the exported time series (e.g. `"qlen[3]"`).
    fn name(&self) -> String;

    /// Samples the probe at window boundary `now` from the model view.
    ///
    /// `&mut self` permits private probe state (windowed differencing);
    /// the view itself is immutable.
    fn sample(&mut self, now: f64, view: &V) -> f64;

    /// Notifies the probe that the model reset its cumulative history
    /// (end of warmup). Probes that difference cumulative counters must
    /// drop their remembered baseline here.
    fn on_reset(&mut self, _now: f64) {}
}

/// An ordered collection of probes plus the rows they have produced.
pub struct ProbeRegistry<V> {
    probes: Vec<Box<dyn Probe<V>>>,
    times: Vec<f64>,
    rows: Vec<Vec<f64>>,
}

impl<V> Default for ProbeRegistry<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ProbeRegistry<V> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ProbeRegistry {
            probes: Vec::new(),
            times: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Adds a probe; its column appears in registration order.
    pub fn register(&mut self, probe: Box<dyn Probe<V>>) {
        self.probes.push(probe);
    }

    /// Number of registered probes (columns).
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }

    /// Number of sampled rows so far.
    pub fn sample_count(&self) -> usize {
        self.rows.len()
    }

    /// Column names in registration order.
    pub fn columns(&self) -> Vec<String> {
        self.probes.iter().map(|p| p.name()).collect()
    }

    /// Samples every probe at boundary `now` and appends one row.
    pub fn sample_all(&mut self, now: f64, view: &V) {
        let row = self
            .probes
            .iter_mut()
            .map(|p| p.sample(now, view))
            .collect();
        self.times.push(now);
        self.rows.push(row);
    }

    /// Forwards a model history reset (end of warmup) to every probe.
    pub fn notify_reset(&mut self, now: f64) {
        for p in &mut self.probes {
            p.on_reset(now);
        }
    }

    /// Consumes the registry into an exportable report.
    pub fn into_report(self, sample_interval: f64, kernel: KernelCounters) -> ObsReport {
        let columns = self.columns();
        ObsReport {
            sample_interval,
            columns,
            times: self.times,
            rows: self.rows,
            kernel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct View {
        load: f64,
    }

    struct LoadProbe;
    impl Probe<View> for LoadProbe {
        fn name(&self) -> String {
            "load".into()
        }
        fn sample(&mut self, _now: f64, view: &View) -> f64 {
            view.load
        }
    }

    /// Differences a cumulative counter across windows, like the
    /// utilization probe in the cluster simulator.
    struct DeltaProbe {
        prev: f64,
    }
    impl Probe<View> for DeltaProbe {
        fn name(&self) -> String {
            "delta".into()
        }
        fn sample(&mut self, _now: f64, view: &View) -> f64 {
            let d = view.load - self.prev;
            self.prev = view.load;
            d
        }
        fn on_reset(&mut self, _now: f64) {
            self.prev = 0.0;
        }
    }

    #[test]
    fn samples_accumulate_in_registration_order() {
        let mut reg = ProbeRegistry::new();
        reg.register(Box::new(LoadProbe));
        reg.register(Box::new(DeltaProbe { prev: 0.0 }));
        reg.sample_all(1.0, &View { load: 3.0 });
        reg.sample_all(2.0, &View { load: 5.0 });
        let report = reg.into_report(1.0, KernelCounters::default());
        assert_eq!(report.columns, vec!["load", "delta"]);
        assert_eq!(report.times, vec![1.0, 2.0]);
        assert_eq!(report.rows, vec![vec![3.0, 3.0], vec![5.0, 2.0]]);
    }

    #[test]
    fn reset_rebases_differencing_probes() {
        let mut reg = ProbeRegistry::new();
        reg.register(Box::new(DeltaProbe { prev: 0.0 }));
        reg.sample_all(1.0, &View { load: 10.0 });
        // The model discarded its cumulative history (e.g. warmup end):
        // the counter restarts from zero and so must the baseline.
        reg.notify_reset(1.5);
        reg.sample_all(2.0, &View { load: 4.0 });
        let report = reg.into_report(1.0, KernelCounters::default());
        assert_eq!(report.rows, vec![vec![10.0], vec![4.0]]);
    }

    #[test]
    fn empty_registry_produces_empty_rows() {
        let mut reg: ProbeRegistry<View> = ProbeRegistry::new();
        assert_eq!(reg.probe_count(), 0);
        reg.sample_all(1.0, &View { load: 0.0 });
        let report = reg.into_report(1.0, KernelCounters::default());
        assert_eq!(report.rows, vec![Vec::<f64>::new()]);
    }
}

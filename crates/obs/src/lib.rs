//! # hetsched-obs — run-level observability for the reproduction
//!
//! The paper's Fig. 2 is itself a time-series observable: workload
//! allocation deviation sampled once per 120 s interval. This crate
//! generalizes that shape into a reusable metrics plane for the
//! simulator — the standard per-interval instrumentation a serving
//! stack would expose, applied to a discrete-event model:
//!
//! * [`ObsSpec`] — the sampling contract (window length), threaded
//!   through `ClusterConfig` and serde-defaulted so pre-observability
//!   JSON keeps loading unchanged.
//! * [`Probe`] / [`ProbeRegistry`] — a model-agnostic probe registry.
//!   A probe is named, reads a model-provided *view*, and returns one
//!   number per sampling window; the registry accumulates the rows.
//! * [`ObsReport`] — the columnar time series that lands in `RunStats`,
//!   with JSONL and CSV exporters.
//! * [`KernelCounters`] — a serializable mirror of the event kernel's
//!   [`FelStats`](hetsched_desim::FelStats) traffic counters
//!   (`hetsched-desim` is dependency-free by design, so the serde view
//!   of its counters lives here).
//!
//! ## The non-perturbation invariant
//!
//! Observability must never change what it observes. Probes *read* a
//! view assembled by the model; they cannot schedule events, draw from
//! the simulation's RNG streams, or mutate model state. The simulator
//! enforces this by construction (the registry is driven from the
//! actor's event boundary with an immutable snapshot) and by test
//! (`tests/obs_determinism.rs` asserts `RunStats` is bit-identical with
//! observability on and off).

#![warn(missing_docs)]

pub mod probe;
pub mod report;
pub mod spec;

pub use probe::{Probe, ProbeRegistry};
pub use report::{KernelCounters, ObsReport};
pub use spec::ObsSpec;

//! Report formatting: fixed-width console tables and JSON archiving.
//!
//! The bench binaries print each paper table/figure as rows on stdout
//! (the "same rows/series the paper reports") and optionally archive the
//! full structured results as JSON for post-processing.

use std::io::Write;
use std::path::Path;

use serde::Serialize;

/// A simple fixed-width console table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    /// Panics on a column-count mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column, right-align the rest
                // (labels left, numbers right).
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let _ = lock.write_all(self.render().as_bytes());
    }
}

/// A terminal line chart for figure series.
///
/// The paper's artifacts are *plots*; the figure binaries print each
/// series as a table and then draw it with this renderer so the curve
/// shapes (orderings, crossovers, divergences) are visible at a glance
/// without leaving the terminal.
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    width: usize,
    height: usize,
    series: Vec<Series>,
}

/// Plot glyphs assigned to series in order.
const GLYPHS: [char; 8] = ['o', '*', '+', 'x', '#', '@', '%', '&'];

/// One plotted series: glyph, legend label, points.
type Series = (char, String, Vec<(f64, f64)>);

impl Chart {
    /// Creates an empty chart with the given terminal footprint
    /// (plot-area columns × rows).
    ///
    /// # Panics
    /// Panics on degenerate dimensions.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 4, "chart too small to be legible");
        Chart {
            title: title.into(),
            width,
            height,
            series: Vec::new(),
        }
    }

    /// Adds a named series of `(x, y)` points.
    ///
    /// # Panics
    /// Panics if more than 8 series are added (no glyphs left) or a
    /// point is non-finite.
    pub fn series(&mut self, name: impl Into<String>, points: &[(f64, f64)]) -> &mut Self {
        assert!(self.series.len() < GLYPHS.len(), "too many series");
        assert!(
            points.iter().all(|&(x, y)| x.is_finite() && y.is_finite()),
            "chart points must be finite"
        );
        let glyph = GLYPHS[self.series.len()];
        self.series.push((glyph, name.into(), points.to_vec()));
        self
    }

    /// Renders the chart to a string.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, _, p)| p.iter().copied())
            .collect();
        if pts.is_empty() {
            return format!("{} (no data)\n", self.title);
        }
        let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            x_lo = x_lo.min(x);
            x_hi = x_hi.max(x);
            y_lo = y_lo.min(y);
            y_hi = y_hi.max(y);
        }
        if (x_hi - x_lo).abs() < 1e-12 {
            x_hi = x_lo + 1.0;
        }
        if (y_hi - y_lo).abs() < 1e-12 {
            y_hi = y_lo + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (glyph, _, points) in &self.series {
            for &(x, y) in points {
                let cx = ((x - x_lo) / (x_hi - x_lo) * (self.width - 1) as f64).round() as usize;
                let cy = ((y - y_lo) / (y_hi - y_lo) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy;
                grid[row][cx] = *glyph;
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{y_hi:>9.3} ")
            } else if i == self.height - 1 {
                format!("{y_lo:>9.3} ")
            } else {
                " ".repeat(10)
            };
            out.push_str(&label);
            out.push('|');
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&" ".repeat(10));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "{}{:<12.4}{:>width$.4}\n",
            " ".repeat(11),
            x_lo,
            x_hi,
            width = self.width.saturating_sub(12)
        ));
        let legend: Vec<String> = self
            .series
            .iter()
            .map(|(g, name, _)| format!("{g} = {name}"))
            .collect();
        out.push_str(&format!("{}{}\n", " ".repeat(11), legend.join("   ")));
        out
    }

    /// Prints the chart to stdout.
    pub fn print(&self) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let _ = lock.write_all(self.render().as_bytes());
    }
}

/// Serializes `value` as pretty JSON into `path` (creating parent
/// directories).
///
/// # Errors
/// Propagates IO/serialization failures as strings.
pub fn save_json<T: Serialize>(path: impl AsRef<Path>, value: &T) -> Result<(), String> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
        }
    }
    let json = serde_json::to_string_pretty(value).map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("write {path:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["policy", "ratio"]);
        t.row(["ORR", "1.23"]);
        t.row(["DYNAMIC", "1.1"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("policy"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numbers right-aligned: both data lines end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[2].ends_with("1.23"));
        assert!(lines[3].ends_with("1.1"));
    }

    #[test]
    fn wide_cells_stretch_columns() {
        let mut t = Table::new(["a", "b"]);
        t.row(["very-long-label", "1"]);
        let r = t.render();
        assert!(r.lines().next().unwrap().len() >= "very-long-label".len());
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn rejects_mismatched_row() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn chart_renders_series() {
        let mut c = Chart::new("figure", 40, 10);
        c.series("ORR", &[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]);
        c.series("WRR", &[(1.0, 2.0), (2.0, 3.0), (3.0, 4.0)]);
        let r = c.render();
        assert!(r.starts_with("figure"));
        assert!(r.contains("o = ORR"));
        assert!(r.contains("* = WRR"));
        assert!(r.contains('o'));
        assert!(r.contains('*'));
        // Axis labels carry the y extremes.
        assert!(r.contains("4.000"));
        assert!(r.contains("1.000"));
    }

    #[test]
    fn chart_handles_flat_series() {
        let mut c = Chart::new("flat", 20, 5);
        c.series("const", &[(0.0, 2.0), (1.0, 2.0)]);
        let r = c.render();
        assert!(r.contains('o'));
    }

    #[test]
    fn empty_chart_says_no_data() {
        let c = Chart::new("empty", 20, 5);
        assert!(c.render().contains("no data"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn chart_rejects_tiny_footprint() {
        Chart::new("x", 2, 2);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn chart_rejects_nan_points() {
        Chart::new("x", 20, 5).series("bad", &[(0.0, f64::NAN)]);
    }

    #[test]
    fn save_json_round_trips() {
        let dir = std::env::temp_dir().join("hetsched_report_test");
        let path = dir.join("sub/out.json");
        save_json(&path, &vec![1, 2, 3]).unwrap();
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! # hetsched — optimized static job scheduling for heterogeneous clusters
//!
//! A faithful, production-quality reproduction of *Tang & Chanson,
//! "Optimizing Static Job Scheduling in a Network of Heterogeneous
//! Computers", ICPP 2000*, as a reusable Rust library.
//!
//! The paper's two contributions, both implemented here from first
//! principles:
//!
//! 1. **Optimized workload allocation** ([`queueing`]): model each
//!    computer as an M/M/1-PS queue and minimize the system mean response
//!    time over the allocation fractions. The closed form (Algorithm 1)
//!    sends a *disproportionately* high share to fast machines and may
//!    starve very slow ones entirely at low load.
//! 2. **Round-robin based dispatching** ([`policies`]): Algorithm 2, a
//!    deficit-style round-robin that realizes arbitrary fractions while
//!    smoothing each computer's arrival substream.
//!
//! Their combination — **ORR** — is evaluated against WRAN/ORAN/WRR and a
//! Dynamic Least-Load yardstick in a discrete-event simulation
//! ([`cluster`]) with heavy-tailed Bounded Pareto job sizes and bursty
//! hyperexponential arrivals ([`dist`]).
//!
//! ## Quick start
//!
//! ```
//! use hetsched::prelude::*;
//!
//! // Two slow machines and one 10× machine at 60% utilization.
//! let cfg = ClusterConfig::paper_default(&[1.0, 1.0, 10.0]).scaled(0.002);
//! let mut exp = Experiment::new("demo", cfg, PolicySpec::orr());
//! exp.replications = 3;
//! let result = exp.run().unwrap();
//! // Response ratios are positive; they can be below 1 because a job on
//! // a 10× machine beats its own speed-1 "size".
//! assert!(result.mean_response_ratio.mean > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`desim`] | deterministic discrete-event kernel + RNG streams |
//! | [`dist`] | Bounded Pareto, hyperexponential, … with analytic moments |
//! | [`metrics`] | Welford, time-weighted stats, P² quantiles, CIs |
//! | [`obs`] | run-level observability: probe registry, time-series report, exporters |
//! | [`queueing`] | M/M/1-PS analysis, Algorithm 1, numeric cross-check |
//! | [`dispatch`] | front-end dispatcher tier: arrival splitters + state-sync plane |
//! | [`cluster`] | the simulated network of heterogeneous computers, incl. the fault-injection layer |
//! | [`policies`] | WRAN/ORAN/WRR/ORR, Dynamic Least-Load, JSQ(d), SITA-E, ReORR |
//! | [`error`] | the typed error shared across the workspace |
//! | [`parallel`] | scoped-thread replication runner |
//! | [`experiment`] | replication + aggregation harness |
//! | [`sweep`] | sweep-level work pool: all points' replications through one set of workers |
//! | [`scenarios`] | one preset per paper table/figure |
//! | [`report`] | fixed-width tables and JSON archiving |

#![warn(missing_docs)]

pub use hetsched_cluster as cluster;
pub use hetsched_desim as desim;
pub use hetsched_dispatch as dispatch;
pub use hetsched_dist as dist;
pub use hetsched_error as error;
pub use hetsched_metrics as metrics;
pub use hetsched_obs as obs;
pub use hetsched_parallel as parallel;
pub use hetsched_policies as policies;
pub use hetsched_queueing as queueing;

pub mod experiment;
pub mod report;
pub mod scenarios;
pub mod sweep;

pub use experiment::{Experiment, ExperimentResult};
pub use sweep::{PointStats, Sweep, SweepOutcome, SweepStats};

/// The usual imports for examples and experiment binaries.
pub mod prelude {
    pub use crate::cluster::faults::{FaultSpec, JobFaultSemantics};
    pub use crate::cluster::{
        ArrivalSpec, ChannelSpec, ClusterConfig, Coordination, DisciplineSpec, DispatchSpec,
        EventListBackend, HedgeSpec, MalleableClass, MalleableSpec, ParallelSimulation, PdesTiming,
        PlaneSpec, RetrySpec, RunStats, SpeedupCurve, SplitterSpec, SyncSpec,
    };
    pub use crate::dist::DistSpec;
    pub use crate::error::HetschedError;
    pub use crate::experiment::{Experiment, ExperimentResult};
    pub use crate::metrics::CiSummary;
    pub use crate::obs::{ObsReport, ObsSpec};
    pub use crate::policies::{AllocationSpec, DispatcherSpec, PolicySpec};
    pub use crate::queueing::{closed_form, objective, HetSystem};
    pub use crate::report::{Chart, Table};
    pub use crate::scenarios;
    pub use crate::sweep::{Sweep, SweepOutcome, SweepStats};
}

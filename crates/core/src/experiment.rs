//! Replication harness.
//!
//! [`Experiment`] bundles a cluster configuration with a policy and runs
//! it over several independent seeds in parallel, aggregating each metric
//! into `mean ± 95% CI` exactly as the paper's methodology prescribes
//! ("Each data point … is the average result of 10 independent runs with
//! different random number streams", §4.1).

use hetsched_cluster::{
    pdes::{shard_config, shard_ranges},
    ClusterConfig, ParallelSimulation, RunStats, Simulation,
};
use hetsched_error::HetschedError;
use hetsched_metrics::CiSummary;
use hetsched_parallel::{plan_nested, replicate};
use hetsched_policies::PolicySpec;
use serde::{Deserialize, Serialize};

/// A named, replicated simulation experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Label used in reports.
    pub name: String,
    /// The simulated system and workload.
    pub cluster: ClusterConfig,
    /// The scheduling policy under test.
    pub policy: PolicySpec,
    /// Number of independent runs (the paper uses 10).
    pub replications: u64,
    /// Root seed; replication `i` runs with a seed derived from it.
    pub base_seed: u64,
    /// Worker threads for the replication runner (0 = auto).
    pub threads: usize,
    /// Simulation threads per replication (0 = classic single-kernel
    /// engine; ≥ 1 = the conservative parallel engine with one event
    /// kernel per dispatch shard, spread over this many threads).
    ///
    /// `1` runs the parallel engine's algorithm single-threaded, which
    /// is bit-identical to any higher thread count — useful for
    /// determinism checks. Absent from older configs, so it defaults
    /// to the classic engine.
    #[serde(default)]
    pub sim_threads: usize,
}

impl Experiment {
    /// Creates an experiment with the paper's 10 replications.
    pub fn new(name: impl Into<String>, cluster: ClusterConfig, policy: PolicySpec) -> Self {
        Experiment {
            name: name.into(),
            cluster,
            policy,
            replications: 10,
            base_seed: 0x5EED_0001,
            threads: 0,
            sim_threads: 0,
        }
    }

    /// Shrinks the horizon by `scale` and the replication count to
    /// `reps` — the bench harness's `--quick` mode.
    pub fn quick(mut self, scale: f64, reps: u64) -> Self {
        self.cluster = self.cluster.scaled(scale);
        self.replications = reps;
        self
    }

    /// Seed of replication `i` (a large odd-constant stride keeps the
    /// seeds well separated for the SplitMix64 expander).
    pub fn seed_of(&self, i: u64) -> u64 {
        self.base_seed
            .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The cluster config with any `fleet` shorthand expanded — the
    /// shape every shard-planning and policy-prior computation must see.
    fn cluster_normalized(&self) -> ClusterConfig {
        let mut cluster = self.cluster.clone();
        cluster.normalize_fleet();
        cluster
    }

    /// Runs a single replication.
    ///
    /// # Errors
    /// Returns the configuration/policy validation error, if any.
    pub fn run_single(&self, replication: u64) -> Result<RunStats, HetschedError> {
        let cluster = self.cluster_normalized();
        if self.sim_threads > 0 {
            // The conservative parallel engine: each dispatch shard owns
            // a contiguous server slice, so each shard's policy is built
            // over that shard's sub-configuration.
            let sim = ParallelSimulation::new(
                cluster.clone(),
                self.build_shard_policies(&cluster)?,
                self.seed_of(replication),
                self.sim_threads,
            )?;
            return Ok(sim.run());
        }
        // One freshly built policy instance per dispatcher shard: the
        // shards share a spec, never state.
        let policies = (0..cluster.dispatch.dispatchers)
            .map(|_| self.policy.build(&cluster))
            .collect::<Result<Vec<_>, _>>()?;
        let sim = Simulation::with_policies(cluster, policies, self.seed_of(replication))?;
        Ok(sim.run())
    }

    /// Builds one policy instance per parallel-engine shard, each over
    /// its shard's sub-configuration.
    ///
    /// # Errors
    /// Returns the policy build error, or
    /// [`HetschedError::InvalidConfig`] when there are fewer servers
    /// than shards (the partitioned engine needs at least one server
    /// per shard).
    fn build_shard_policies(
        &self,
        cluster: &ClusterConfig,
    ) -> Result<Vec<Box<dyn hetsched_cluster::Policy>>, HetschedError> {
        let d = cluster.dispatch.dispatchers.max(1);
        if d == 1 {
            return Ok(vec![self.policy.build(cluster)?]);
        }
        if cluster.speeds.len() < d {
            return Err(HetschedError::InvalidConfig(format!(
                "the parallel engine needs at least one server per shard: \
                 {} servers, {} shards",
                cluster.speeds.len(),
                d
            )));
        }
        shard_ranges(cluster.speeds.len(), d)
            .iter()
            .map(|r| self.policy.build(&shard_config(cluster, r)))
            .collect()
    }

    /// Runs all replications (in parallel) and aggregates.
    ///
    /// # Errors
    /// Returns the validation error without spawning any run.
    pub fn run(&self) -> Result<ExperimentResult, HetschedError> {
        // Validate once up front so errors surface before threads spawn.
        let cluster = self.cluster_normalized();
        self.policy.build(&cluster)?;
        cluster.validate()?;
        let threads = self.plan_threads()?;
        let runs: Vec<RunStats> = replicate(self.replications, threads, |i| {
            self.run_single(i)
                .expect("validated configuration cannot fail")
        });
        Ok(ExperimentResult::aggregate(
            &self.name,
            self.policy.label(),
            runs,
        ))
    }

    /// Resolves the replication-worker count, accounting for the
    /// per-replication simulation threads so `threads × sim_threads`
    /// cannot silently oversubscribe the machine (see
    /// [`hetsched_parallel::plan_nested`]). Also pre-validates the
    /// per-shard policy builds when the parallel engine is selected, so
    /// errors surface before any worker spawns.
    ///
    /// # Errors
    /// [`HetschedError::InvalidConfig`] for absurd thread combinations
    /// or an invalid shard decomposition.
    fn plan_threads(&self) -> Result<usize, HetschedError> {
        if self.sim_threads > 0 {
            self.build_shard_policies(&self.cluster_normalized())?;
        }
        plan_nested(self.threads, self.sim_threads, 0).map_err(HetschedError::InvalidConfig)
    }

    /// Runs replications until the 95% CI half-width of the mean
    /// response ratio falls below `rel_precision` of its mean, or
    /// `max_reps` is reached — sequential-stopping experimentation, an
    /// extension over the paper's fixed 10 runs.
    ///
    /// Starts from `self.replications` runs (at least 3, so the t-based
    /// interval is meaningful) and adds batches of `self.replications`
    /// until the target precision is met.
    ///
    /// # Errors
    /// Returns the validation error without spawning any run.
    pub fn run_to_precision(
        &self,
        rel_precision: f64,
        max_reps: u64,
    ) -> Result<ExperimentResult, HetschedError> {
        if !(rel_precision > 0.0 && rel_precision.is_finite()) {
            return Err(HetschedError::BadParameter(
                "precision must be a positive fraction".into(),
            ));
        }
        if max_reps == 0 {
            return Err(HetschedError::BadParameter(
                "need at least one replication".into(),
            ));
        }
        self.policy.build(&self.cluster)?;
        self.cluster.validate()?;
        let threads = self.plan_threads()?;
        let batch = self.replications.max(3).min(max_reps);
        let mut runs: Vec<RunStats> = Vec::new();
        let mut next_rep = 0u64;
        loop {
            let take = batch.min(max_reps - next_rep);
            let seeds: Vec<u64> = (next_rep..next_rep + take).collect();
            next_rep += take;
            let mut new_runs = hetsched_parallel::parallel_map(&seeds, threads, |&i| {
                self.run_single(i).expect("validated configuration")
            });
            runs.append(&mut new_runs);
            if runs.len() >= 3 {
                let ratios: Vec<f64> = runs.iter().map(|r| r.mean_response_ratio).collect();
                let ci = CiSummary::from_values(&ratios);
                if ci.half_width <= rel_precision * ci.mean.abs() {
                    break;
                }
            }
            if next_rep >= max_reps {
                break;
            }
        }
        Ok(ExperimentResult::aggregate(
            &self.name,
            self.policy.label(),
            runs,
        ))
    }
}

/// Aggregated result of an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The experiment's label.
    pub name: String,
    /// The policy's display name.
    pub policy: String,
    /// Mean response time across replications.
    pub mean_response_time: CiSummary,
    /// Mean response ratio across replications.
    pub mean_response_ratio: CiSummary,
    /// Fairness (std-dev of response ratio) across replications.
    pub fairness: CiSummary,
    /// 95th percentile response ratio across replications.
    pub p95_response_ratio: CiSummary,
    /// Mean slowdown across replications (the malleable axis's
    /// objective; numerically the response ratio on rigid runs).
    /// Serde-defaulted to an empty summary so results saved before the
    /// malleable axis still load.
    #[serde(default = "CiSummary::absent")]
    pub mean_slowdown: CiSummary,
    /// Mean dispatch fraction per server (Table-1 style percentages).
    pub dispatch_fractions: Vec<f64>,
    /// Mean per-server utilization.
    pub server_utilizations: Vec<f64>,
    /// The raw per-replication statistics.
    pub runs: Vec<RunStats>,
}

impl ExperimentResult {
    /// Aggregates raw runs into CI summaries.
    ///
    /// # Panics
    /// Panics if `runs` is empty.
    pub fn aggregate(name: &str, policy: String, runs: Vec<RunStats>) -> Self {
        assert!(!runs.is_empty(), "no replications to aggregate");
        let collect = |f: &dyn Fn(&RunStats) -> f64| -> Vec<f64> { runs.iter().map(f).collect() };
        let n_servers = runs[0].servers.len();
        let mut fractions = vec![0.0; n_servers];
        let mut utils = vec![0.0; n_servers];
        for r in &runs {
            for (i, s) in r.servers.iter().enumerate() {
                fractions[i] += s.dispatch_fraction;
                utils[i] += s.utilization;
            }
        }
        let k = runs.len() as f64;
        fractions.iter_mut().for_each(|x| *x /= k);
        utils.iter_mut().for_each(|x| *x /= k);
        ExperimentResult {
            name: name.to_string(),
            policy,
            mean_response_time: CiSummary::from_values(&collect(&|r| r.mean_response_time)),
            mean_response_ratio: CiSummary::from_values(&collect(&|r| r.mean_response_ratio)),
            fairness: CiSummary::from_values(&collect(&|r| r.fairness)),
            p95_response_ratio: CiSummary::from_values(&collect(&|r| r.p95_response_ratio)),
            mean_slowdown: CiSummary::from_values(&collect(&|r| r.mean_slowdown)),
            dispatch_fractions: fractions,
            server_utilizations: utils,
            runs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_cluster::ClusterConfig;

    fn tiny() -> Experiment {
        // Short horizon + exponential sizes: fast but statistically alive.
        let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0]);
        cfg.job_sizes = hetsched_dist::DistSpec::Exponential { mean: 10.0 };
        cfg.horizon = 20_000.0;
        cfg.warmup = 2_000.0;
        let mut e = Experiment::new("tiny", cfg, PolicySpec::orr());
        e.replications = 3;
        e
    }

    #[test]
    fn runs_and_aggregates() {
        let r = tiny().run().unwrap();
        assert_eq!(r.runs.len(), 3);
        assert_eq!(r.policy, "ORR");
        assert!(r.mean_response_ratio.mean >= 1.0);
        assert!(r.fairness.mean >= 0.0);
        assert_eq!(r.dispatch_fractions.len(), 2);
        let total: f64 = r.dispatch_fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rigid_slowdown_equals_response_ratio() {
        // Without malleable classes every job runs on one server, so
        // slowdown (response / inherent work at speed 1) and response
        // ratio are the same statistic.
        let r = tiny().run().unwrap();
        assert!((r.mean_slowdown.mean - r.mean_response_ratio.mean).abs() < 1e-12);
    }

    #[test]
    fn results_without_mean_slowdown_still_load() {
        let r = tiny().run().unwrap();
        let mut v = serde_json::to_value(&r).unwrap();
        v.as_object_mut().unwrap().remove("mean_slowdown");
        let back: ExperimentResult = serde_json::from_value(v).unwrap();
        assert_eq!(back.mean_slowdown, CiSummary::absent());
        assert_eq!(back.name, r.name);
    }

    #[test]
    fn deterministic_given_base_seed() {
        let a = tiny().run().unwrap();
        let b = tiny().run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_are_distinct() {
        let e = tiny();
        let s: Vec<u64> = (0..10).map(|i| e.seed_of(i)).collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert_ne!(s[i], s[j]);
            }
        }
    }

    #[test]
    fn quick_scales() {
        let e = tiny().quick(0.5, 2);
        assert_eq!(e.replications, 2);
        assert_eq!(e.cluster.horizon, 10_000.0);
    }

    #[test]
    fn invalid_config_errors_before_running() {
        let mut e = tiny();
        e.cluster.utilization = 1.5;
        assert!(e.run().is_err());
    }

    #[test]
    fn run_to_precision_stops_when_tight() {
        // A generous precision target is met by the initial batch.
        let mut e = tiny();
        e.replications = 3;
        let r = e.run_to_precision(10.0, 50).unwrap();
        assert_eq!(r.runs.len(), 3, "initial batch should suffice");
        // An impossible target runs to the cap.
        let r = e.run_to_precision(1e-9, 7).unwrap();
        assert_eq!(r.runs.len(), 7);
        // Tighter targets never use fewer runs than looser ones.
        let loose = e.run_to_precision(0.5, 30).unwrap();
        let tight = e.run_to_precision(0.05, 30).unwrap();
        assert!(tight.runs.len() >= loose.runs.len());
    }

    #[test]
    fn run_to_precision_validates() {
        let e = tiny();
        assert!(e.run_to_precision(0.0, 10).is_err());
        assert!(e.run_to_precision(0.1, 0).is_err());
    }

    #[test]
    fn sharded_experiment_runs_with_per_shard_policies() {
        let mut e = tiny();
        e.cluster.dispatch =
            hetsched_cluster::DispatchSpec::sharded(4, hetsched_cluster::SplitterSpec::IidRandom)
                .with_sync(hetsched_cluster::SyncSpec::every(1_000.0));
        let r = e.run().unwrap();
        assert_eq!(r.runs.len(), 3);
        for run in &r.runs {
            assert_eq!(run.shards.len(), 4);
            assert!(run.syncs_applied > 0, "ORR state must sync");
            let share: f64 = run.shards.iter().map(|s| s.share).sum();
            assert!((share - 1.0).abs() < 1e-12);
        }
        // Deterministic like every other experiment.
        assert_eq!(e.run().unwrap(), r);
    }

    #[test]
    fn parallel_engine_with_one_shard_matches_classic() {
        let classic = tiny().run().unwrap();
        let mut e = tiny();
        e.sim_threads = 1;
        let pdes = e.run().unwrap();
        // D = 1, no sync plane: the parallel engine is the classic
        // simulation bit-for-bit, replication by replication.
        assert_eq!(classic.runs, pdes.runs);
    }

    #[test]
    fn parallel_engine_shards_the_cluster() {
        let mut e = tiny();
        e.cluster.dispatch =
            hetsched_cluster::DispatchSpec::sharded(2, hetsched_cluster::SplitterSpec::IidRandom)
                .with_sync(hetsched_cluster::SyncSpec::every(1_000.0));
        e.sim_threads = 2;
        let r = e.run().unwrap();
        assert_eq!(r.runs.len(), 3);
        for run in &r.runs {
            assert_eq!(run.shards.len(), 2);
            assert_eq!(run.servers.len(), 2);
        }
        // Same experiment, one simulation thread: bit-identical.
        let mut seq = e.clone();
        seq.sim_threads = 1;
        assert_eq!(seq.run().unwrap().runs, r.runs);
    }

    #[test]
    fn parallel_engine_rejects_more_shards_than_servers() {
        let mut e = tiny();
        e.cluster.dispatch =
            hetsched_cluster::DispatchSpec::sharded(4, hetsched_cluster::SplitterSpec::IidRandom);
        e.sim_threads = 1;
        assert!(e.run().is_err(), "2 servers cannot feed 4 shards");
    }

    #[test]
    fn absurd_thread_combinations_error() {
        let mut e = tiny();
        e.threads = 64;
        e.sim_threads = 64;
        let err = e.run().unwrap_err();
        assert!(err.to_string().contains("sim_threads") || err.to_string().contains("threads"));
    }

    #[test]
    fn sim_threads_defaults_to_classic_in_old_configs() {
        let json = serde_json::to_value(tiny()).unwrap();
        let mut obj = json;
        obj.as_object_mut().unwrap().remove("sim_threads");
        let back: Experiment = serde_json::from_value(obj).unwrap();
        assert_eq!(back.sim_threads, 0);
    }

    #[test]
    fn single_replication_has_zero_ci() {
        let mut e = tiny();
        e.replications = 1;
        let r = e.run().unwrap();
        assert_eq!(r.mean_response_ratio.half_width, 0.0);
    }
}

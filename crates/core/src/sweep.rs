//! Sweep-level work pool.
//!
//! Every figure/table in the paper is a *sweep*: a grid of data points
//! (utilization, speed skew, system size, …) where each point averages
//! several independent replications (§4.1). Running points one at a time
//! puts a fork/join barrier after every point, and the longest
//! replication — always at high utilization, where the Bounded-Pareto
//! tail bites — leaves the other cores idle before the next point can
//! start.
//!
//! [`Sweep`] removes those barriers. It flattens the whole grid into one
//! stream of `(point, replication)` tasks executed by a single pool of
//! workers, ordered **longest-expected-first** (descending utilization
//! `ρ`, then expected job count), so tail stragglers start early and
//! hide behind the rest of the sweep instead of running alone at the
//! end. Results land in write-once per-task slots and are merged per
//! point in replication order, so the output is **bit-identical** to
//! running each point's [`Experiment::run`] sequentially — at any thread
//! count.
//!
//! The pool also instruments itself: [`SweepStats`] records simulated
//! events per wall-clock second and per-point busy time, giving the repo
//! a machine-readable performance trajectory (`BENCH_sweep.json` in the
//! bench harness).

use std::time::Instant;

use hetsched_cluster::RunStats;
use hetsched_error::HetschedError;
use hetsched_metrics::CiSummary;
use hetsched_parallel::{parallel_map_in_order, resolve_threads};
use serde::{Deserialize, Serialize};

use crate::experiment::{Experiment, ExperimentResult};

/// A collection of experiments executed through one global work pool.
///
/// Unlike a loop of [`Experiment::run`] calls, a `Sweep` has no
/// per-point barrier: all `(point, replication)` tasks share one worker
/// pool. Each point's own `threads` field is ignored — the pool is a
/// sweep-level resource, controlled by [`Sweep::threads`].
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// The data points, in presentation order.
    pub points: Vec<Experiment>,
    /// Worker threads for the pool (0 = auto).
    pub threads: usize,
}

/// Results plus pool instrumentation for one sweep execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// One aggregated result per point, in input order; bit-identical to
    /// what each point's [`Experiment::run`] would have produced.
    pub results: Vec<ExperimentResult>,
    /// Pool throughput counters.
    pub stats: SweepStats,
}

/// Machine-readable pool throughput counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Worker threads the pool actually used.
    pub threads: usize,
    /// Number of data points.
    pub points: usize,
    /// Number of `(point, replication)` tasks executed.
    pub tasks: usize,
    /// Wall-clock seconds for the whole pool (all rounds).
    pub wall_s: f64,
    /// Total simulated events processed across all tasks.
    pub total_events: u64,
    /// `total_events / wall_s` — the headline throughput number.
    pub events_per_sec: f64,
    /// Per-point detail, in input order.
    pub point_stats: Vec<PointStats>,
}

/// Per-point slice of the pool counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointStats {
    /// The point's experiment label.
    pub name: String,
    /// The policy's display name.
    pub policy: String,
    /// The point's configured utilization (the ordering key).
    pub utilization: f64,
    /// Replications executed for this point.
    pub replications: u64,
    /// Simulated events processed by this point's replications.
    pub events: u64,
    /// Summed wall-clock seconds of this point's replication tasks
    /// (worker-busy seconds, not elapsed time — tasks of different
    /// points overlap freely in the pool).
    pub busy_s: f64,
}

/// One schedulable unit: replication `rep` of point `point`.
#[derive(Debug, Clone, Copy)]
struct Task {
    point: usize,
    rep: u64,
}

impl Sweep {
    /// Creates a sweep over `points` with automatic thread count.
    pub fn new(points: Vec<Experiment>) -> Self {
        Sweep { points, threads: 0 }
    }

    /// Sets the worker-thread knob (0 = auto).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Validates every point up front so errors surface before any
    /// thread spawns.
    fn validate(&self) -> Result<(), HetschedError> {
        for p in &self.points {
            p.policy
                .build(&p.cluster)
                .map(|_| ())
                .map_err(|e| e.context(format!("point '{}'", p.name)))?;
            p.cluster
                .validate()
                .map_err(|e| e.context(format!("point '{}'", p.name)))?;
            if p.replications == 0 {
                return Err(HetschedError::BadParameter(format!(
                    "point '{}': needs at least one replication",
                    p.name
                )));
            }
        }
        Ok(())
    }

    /// Pull order for `tasks`: descending expected cost, so the longest
    /// tasks start first. The primary key is the point's utilization `ρ`
    /// (queueing delay — and therefore event-tail length — explodes as
    /// `ρ → 1`); the secondary key is the expected job count
    /// `λ · horizon` (bigger systems and longer horizons mean more
    /// events). The sort is stable, so tied tasks keep their
    /// `(point, replication)` order and the schedule is deterministic.
    fn pull_order(&self, tasks: &[Task]) -> Vec<usize> {
        let keys: Vec<(f64, f64)> = self
            .points
            .iter()
            .map(|p| {
                (
                    p.cluster.utilization,
                    p.cluster.lambda() * p.cluster.horizon,
                )
            })
            .collect();
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        order.sort_by(|&a, &b| {
            let ka = keys[tasks[a].point];
            let kb = keys[tasks[b].point];
            kb.0.total_cmp(&ka.0).then(kb.1.total_cmp(&ka.1))
        });
        order
    }

    /// Executes one round of `tasks` through the pool, returning
    /// `(RunStats, task_wall_seconds)` in task order.
    fn run_round(&self, tasks: &[Task], threads: usize) -> Vec<(RunStats, f64)> {
        let order = self.pull_order(tasks);
        parallel_map_in_order(tasks, threads, &order, |t| {
            let started = Instant::now();
            let stats = self.points[t.point]
                .run_single(t.rep)
                .expect("validated configuration cannot fail");
            (stats, started.elapsed().as_secs_f64())
        })
    }

    /// Runs every point's replications through one pool and aggregates
    /// per point in replication order.
    ///
    /// # Errors
    /// Returns the first point's validation error without spawning any
    /// run.
    pub fn run(&self) -> Result<SweepOutcome, HetschedError> {
        self.validate()?;
        let threads = resolve_threads(self.threads);
        let tasks: Vec<Task> = self
            .points
            .iter()
            .enumerate()
            .flat_map(|(point, p)| (0..p.replications).map(move |rep| Task { point, rep }))
            .collect();

        let pool_started = Instant::now();
        let timed = self.run_round(&tasks, threads);
        let wall_s = pool_started.elapsed().as_secs_f64();

        // Tasks were generated point-major, so each point's replications
        // are a contiguous, replication-ordered slice of the results.
        let mut results = Vec::with_capacity(self.points.len());
        let mut point_stats = Vec::with_capacity(self.points.len());
        let mut cursor = 0usize;
        for p in &self.points {
            let n = p.replications as usize;
            let slice = &timed[cursor..cursor + n];
            cursor += n;
            let runs: Vec<RunStats> = slice.iter().map(|(r, _)| r.clone()).collect();
            point_stats.push(PointStats {
                name: p.name.clone(),
                policy: p.policy.label(),
                utilization: p.cluster.utilization,
                replications: p.replications,
                events: runs.iter().map(|r| r.events_processed).sum(),
                busy_s: slice.iter().map(|(_, s)| s).sum(),
            });
            results.push(ExperimentResult::aggregate(&p.name, p.policy.label(), runs));
        }

        Ok(SweepOutcome {
            results,
            stats: SweepStats::collect(threads, wall_s, point_stats),
        })
    }

    /// Runs every point until its 95% CI half-width of the mean response
    /// ratio falls below `rel_precision` of its mean, or `max_reps` is
    /// reached — [`Experiment::run_to_precision`] semantics, but with all
    /// points' batches pooled per round so precision refinement shares
    /// the worker pool too.
    ///
    /// Per point, the replication sequence (and therefore the result) is
    /// bit-identical to calling that point's
    /// [`Experiment::run_to_precision`] on its own.
    ///
    /// # Errors
    /// Returns the validation error without spawning any run.
    pub fn run_to_precision(
        &self,
        rel_precision: f64,
        max_reps: u64,
    ) -> Result<SweepOutcome, HetschedError> {
        if !(rel_precision > 0.0 && rel_precision.is_finite()) {
            return Err(HetschedError::BadParameter(
                "precision must be a positive fraction".into(),
            ));
        }
        if max_reps == 0 {
            return Err(HetschedError::BadParameter(
                "need at least one replication".into(),
            ));
        }
        self.validate()?;
        let threads = resolve_threads(self.threads);

        struct PointState {
            runs: Vec<RunStats>,
            next_rep: u64,
            busy_s: f64,
            done: bool,
        }
        let mut states: Vec<PointState> = self
            .points
            .iter()
            .map(|_| PointState {
                runs: Vec::new(),
                next_rep: 0,
                busy_s: 0.0,
                done: false,
            })
            .collect();

        let mut wall_s = 0.0;
        loop {
            // Collect this round's batch from every unfinished point.
            let mut tasks: Vec<Task> = Vec::new();
            for (point, (p, st)) in self.points.iter().zip(states.iter_mut()).enumerate() {
                if st.done {
                    continue;
                }
                let batch = p.replications.max(3).min(max_reps);
                let take = batch.min(max_reps - st.next_rep);
                tasks.extend((st.next_rep..st.next_rep + take).map(|rep| Task { point, rep }));
                st.next_rep += take;
            }
            if tasks.is_empty() {
                break;
            }

            let round_started = Instant::now();
            let timed = self.run_round(&tasks, threads);
            wall_s += round_started.elapsed().as_secs_f64();

            // Append in task order (replication order within each point)
            // and re-evaluate each point's stopping rule.
            for (t, (run, secs)) in tasks.iter().zip(timed) {
                let st = &mut states[t.point];
                st.runs.push(run);
                st.busy_s += secs;
            }
            for st in states.iter_mut() {
                if st.done {
                    continue;
                }
                if st.runs.len() >= 3 {
                    let ratios: Vec<f64> = st.runs.iter().map(|r| r.mean_response_ratio).collect();
                    let ci = CiSummary::from_values(&ratios);
                    if ci.half_width <= rel_precision * ci.mean.abs() {
                        st.done = true;
                        continue;
                    }
                }
                if st.next_rep >= max_reps {
                    st.done = true;
                }
            }
        }

        let mut results = Vec::with_capacity(self.points.len());
        let mut point_stats = Vec::with_capacity(self.points.len());
        for (p, st) in self.points.iter().zip(states) {
            point_stats.push(PointStats {
                name: p.name.clone(),
                policy: p.policy.label(),
                utilization: p.cluster.utilization,
                replications: st.runs.len() as u64,
                events: st.runs.iter().map(|r| r.events_processed).sum(),
                busy_s: st.busy_s,
            });
            results.push(ExperimentResult::aggregate(
                &p.name,
                p.policy.label(),
                st.runs,
            ));
        }
        Ok(SweepOutcome {
            results,
            stats: SweepStats::collect(threads, wall_s, point_stats),
        })
    }
}

impl SweepStats {
    /// Totals the per-point counters into one stats record.
    fn collect(threads: usize, wall_s: f64, point_stats: Vec<PointStats>) -> Self {
        let tasks = point_stats.iter().map(|p| p.replications as usize).sum();
        let total_events: u64 = point_stats.iter().map(|p| p.events).sum();
        SweepStats {
            threads,
            points: point_stats.len(),
            tasks,
            wall_s,
            total_events,
            events_per_sec: if wall_s > 0.0 {
                total_events as f64 / wall_s
            } else {
                0.0
            },
            point_stats,
        }
    }

    /// Merges several sweeps' counters (e.g. one per figure) into one
    /// trajectory record: wall time and events add; threads must agree
    /// and are carried over.
    pub fn merged(sweeps: &[SweepStats]) -> SweepStats {
        let threads = sweeps.first().map_or(0, |s| s.threads);
        let wall_s: f64 = sweeps.iter().map(|s| s.wall_s).sum();
        let point_stats: Vec<PointStats> = sweeps
            .iter()
            .flat_map(|s| s.point_stats.iter().cloned())
            .collect();
        let mut merged = SweepStats::collect(threads, wall_s, point_stats);
        // `collect` recomputes events/sec from the summed wall time.
        merged.threads = threads;
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_cluster::ClusterConfig;
    use hetsched_policies::PolicySpec;

    fn tiny_point(name: &str, rho: f64) -> Experiment {
        let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0]).with_utilization(rho);
        cfg.job_sizes = hetsched_dist::DistSpec::Exponential { mean: 10.0 };
        cfg.horizon = 20_000.0;
        cfg.warmup = 2_000.0;
        let mut e = Experiment::new(name, cfg, PolicySpec::orr());
        e.replications = 3;
        e
    }

    fn tiny_sweep() -> Sweep {
        Sweep::new(vec![
            tiny_point("rho=0.3", 0.3),
            tiny_point("rho=0.9", 0.9),
            tiny_point("rho=0.6", 0.6),
        ])
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let single = tiny_sweep().with_threads(1).run().unwrap();
        let pooled = tiny_sweep().with_threads(8).run().unwrap();
        assert_eq!(single.results, pooled.results);
    }

    #[test]
    fn matches_per_point_experiment_run() {
        let sweep = tiny_sweep().with_threads(4);
        let pooled = sweep.run().unwrap();
        for (point, pooled_result) in sweep.points.iter().zip(&pooled.results) {
            let sequential = point.run().unwrap();
            assert_eq!(&sequential, pooled_result, "{}", point.name);
        }
    }

    #[test]
    fn pull_order_starts_high_utilization_first() {
        let sweep = tiny_sweep();
        let tasks: Vec<Task> = sweep
            .points
            .iter()
            .enumerate()
            .flat_map(|(point, p)| (0..p.replications).map(move |rep| Task { point, rep }))
            .collect();
        let order = sweep.pull_order(&tasks);
        // Point 1 (rho=0.9) first, then point 2 (0.6), then point 0 (0.3),
        // replications in order within each point.
        let pulled: Vec<(usize, u64)> = order
            .iter()
            .map(|&i| (tasks[i].point, tasks[i].rep))
            .collect();
        assert_eq!(
            pulled,
            vec![
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 1),
                (2, 2),
                (0, 0),
                (0, 1),
                (0, 2)
            ]
        );
    }

    #[test]
    fn stats_account_for_every_task() {
        let out = tiny_sweep().with_threads(2).run().unwrap();
        assert_eq!(out.stats.points, 3);
        assert_eq!(out.stats.tasks, 9);
        assert_eq!(out.stats.point_stats.len(), 3);
        assert!(out.stats.total_events > 0);
        assert!(out.stats.wall_s > 0.0);
        assert!(out.stats.events_per_sec > 0.0);
        let per_point_events: u64 = out.stats.point_stats.iter().map(|p| p.events).sum();
        assert_eq!(per_point_events, out.stats.total_events);
        for (p, r) in out.stats.point_stats.iter().zip(&out.results) {
            assert_eq!(p.replications as usize, r.runs.len());
            assert!(p.busy_s > 0.0);
        }
    }

    #[test]
    fn invalid_point_errors_before_running() {
        let mut sweep = tiny_sweep();
        sweep.points[1].cluster.utilization = 1.5;
        let err = sweep.run().unwrap_err();
        assert!(
            err.to_string().contains("rho=0.9"),
            "error names the point: {err}"
        );
        assert!(
            matches!(
                err.root_cause(),
                hetsched_error::HetschedError::InvalidPolicy(_)
                    | hetsched_error::HetschedError::Saturated
            ),
            "typed root cause: {:?}",
            err.root_cause()
        );
    }

    #[test]
    fn zero_replication_point_is_rejected() {
        let mut sweep = tiny_sweep();
        sweep.points[0].replications = 0;
        assert!(sweep.run().is_err());
    }

    #[test]
    fn empty_sweep_is_ok() {
        let out = Sweep::new(Vec::new()).run().unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.stats.tasks, 0);
        assert_eq!(out.stats.events_per_sec, 0.0);
    }

    #[test]
    fn precision_matches_experiment_run_to_precision() {
        let point = tiny_point("precise", 0.6);
        let sweep = Sweep::new(vec![point.clone()]).with_threads(4);
        // Loose target: met by the initial batch.
        let pooled = sweep.run_to_precision(10.0, 50).unwrap();
        let sequential = point.run_to_precision(10.0, 50).unwrap();
        assert_eq!(pooled.results, vec![sequential]);
        // Impossible target: runs to the cap.
        let pooled = sweep.run_to_precision(1e-9, 7).unwrap();
        let sequential = point.run_to_precision(1e-9, 7).unwrap();
        assert_eq!(pooled.results, vec![sequential]);
        assert_eq!(pooled.results[0].runs.len(), 7);
    }

    #[test]
    fn precision_pools_multiple_points() {
        let sweep = tiny_sweep().with_threads(4);
        let out = sweep.run_to_precision(1e-9, 5).unwrap();
        assert_eq!(out.results.len(), 3);
        for r in &out.results {
            assert_eq!(
                r.runs.len(),
                5,
                "impossible target runs every point to the cap"
            );
        }
        assert_eq!(out.stats.tasks, 15);
    }

    #[test]
    fn precision_validates() {
        let sweep = tiny_sweep();
        assert!(sweep.run_to_precision(0.0, 10).is_err());
        assert!(sweep.run_to_precision(0.1, 0).is_err());
    }

    #[test]
    fn merged_stats_add_up() {
        let a = tiny_sweep().with_threads(2).run().unwrap().stats;
        let b = tiny_sweep().with_threads(2).run().unwrap().stats;
        let m = SweepStats::merged(&[a.clone(), b.clone()]);
        assert_eq!(m.tasks, a.tasks + b.tasks);
        assert_eq!(m.total_events, a.total_events + b.total_events);
        assert_eq!(m.points, a.points + b.points);
        assert!((m.wall_s - (a.wall_s + b.wall_s)).abs() < 1e-12);
    }

    #[test]
    fn stats_serde_round_trip() {
        let stats = tiny_sweep().with_threads(1).run().unwrap().stats;
        let json = serde_json::to_string(&stats).unwrap();
        let back: SweepStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }
}

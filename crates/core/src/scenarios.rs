//! One preset per paper table and figure.
//!
//! Each function returns the exact system/workload configuration of the
//! corresponding experiment in §5, so the bench binaries, the integration
//! tests, and EXPERIMENTS.md all draw from a single source of truth.
//!
//! | paper artifact | preset |
//! |---|---|
//! | Table 1 | [`table1_speeds`] + Dynamic Least-Load at ρ = 0.7 |
//! | Table 3 | [`table3_speeds`] (the base configuration, Σs = 44) |
//! | Figure 2 | [`fig2_deviations`] (dispatch-only harness) |
//! | Figure 3 | [`fig3_config`] (2 fast + 16 slow, fast speed swept) |
//! | Figure 4 | [`fig4_config`] (half fast@10, half slow@1, size swept) |
//! | Figure 5 | [`fig5_config`] (base config, utilization swept) |
//! | Figure 6 | [`fig6_policies`] (ORR with estimation errors) |
//!
//! The fault extension adds [`faults_config`] (base configuration with a
//! crash/repair process) and [`fault_policies`] ({ORR, ReORR, WRR,
//! Dynamic} — the roster the failure experiments compare).

use hetsched_cluster::faults::FaultSpec;
use hetsched_cluster::ClusterConfig;
use hetsched_desim::Rng64;
use hetsched_dist::{ArrivalProcess, Hyperexp2, IidArrivals};
use hetsched_metrics::DeviationTracker;
use hetsched_policies::{PolicySpec, RandomDispatch, RoundRobinDispatch};

use hetsched_cluster::{DispatchCtx, Policy};

/// Table 1's machine speeds: {1, 1.5, 2, 3, 5, 9, 10}.
pub fn table1_speeds() -> Vec<f64> {
    vec![1.0, 1.5, 2.0, 3.0, 5.0, 9.0, 10.0]
}

/// Table 3's base configuration: 15 computers, aggregate speed 44.
pub fn table3_speeds() -> Vec<f64> {
    vec![
        1.0, 1.0, 1.0, 1.0, 1.0, // 5 × 1.0
        1.5, 1.5, 1.5, 1.5, // 4 × 1.5
        2.0, 2.0, 2.0, // 3 × 2.0
        5.0, 10.0, 12.0, // 1 × 5.0, 1 × 10.0, 1 × 12.0
    ]
}

/// Figure 2's workload fractions for 8 computers.
pub fn fig2_fractions() -> Vec<f64> {
    vec![0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04]
}

/// Figure 3: 18 computers — 2 fast (speed `fast`) and 16 slow (speed 1)
/// at the default 70% utilization.
pub fn fig3_config(fast: f64) -> ClusterConfig {
    let mut speeds = vec![1.0; 16];
    speeds.push(fast);
    speeds.push(fast);
    ClusterConfig::paper_default(&speeds)
}

/// The fast-machine speeds swept in Figure 3.
pub fn fig3_sweep() -> Vec<f64> {
    vec![1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 14.0, 20.0]
}

/// Figure 4: `n` computers, half at speed 10 and half at speed 1, at the
/// default 70% utilization.
///
/// # Panics
/// Panics unless `n` is even and positive.
pub fn fig4_config(n: usize) -> ClusterConfig {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "figure 4 uses even system sizes"
    );
    let mut speeds = vec![1.0; n / 2];
    speeds.extend(std::iter::repeat_n(10.0, n / 2));
    ClusterConfig::paper_default(&speeds)
}

/// The system sizes swept in Figure 4.
pub fn fig4_sweep() -> Vec<usize> {
    vec![2, 4, 6, 8, 10, 12, 14, 16, 18, 20]
}

/// Figure 5: the Table-3 base configuration at utilization `rho`.
pub fn fig5_config(rho: f64) -> ClusterConfig {
    ClusterConfig::paper_default(&table3_speeds()).with_utilization(rho)
}

/// The utilizations swept in Figures 5 and 6.
pub fn fig5_sweep() -> Vec<f64> {
    vec![0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
}

/// Figure 6's policies: ORR with relative load-estimation errors
/// (negative = underestimate, §5.4) plus exact ORR and WRR for reference.
pub fn fig6_policies(errors: &[f64]) -> Vec<PolicySpec> {
    let mut v = vec![PolicySpec::orr(), PolicySpec::wrr()];
    v.extend(errors.iter().map(|&e| PolicySpec::orr_with_error(e)));
    v
}

/// The estimation errors shown in Figure 6 (a: under, b: over).
pub fn fig6_errors() -> Vec<f64> {
    vec![-0.15, -0.10, -0.05, 0.05, 0.10, 0.15]
}

/// The five algorithms compared throughout §5, in display order.
pub fn headline_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::wran(),
        PolicySpec::oran(),
        PolicySpec::wrr(),
        PolicySpec::orr(),
        PolicySpec::DynamicLeastLoad,
    ]
}

/// The fault-experiment configuration: the Table-3 base system at
/// utilization `rho` with exponential crash/repair processes of the
/// given mean time between failures and mean time to repair (seconds).
/// In-flight jobs on a crashed machine are lost (the paper's machines
/// have no checkpointing); override `faults.on_crash` for the other
/// semantics.
pub fn faults_config(rho: f64, mtbf: f64, mttr: f64) -> ClusterConfig {
    let mut cfg = fig5_config(rho);
    cfg.faults = Some(FaultSpec::exponential(mtbf, mttr));
    cfg
}

/// The policies the failure experiments compare: static ORR (keeps its
/// full-set α), re-optimizing ORR, WRR, and the dynamic yardstick.
pub fn fault_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::orr(),
        PolicySpec::reopt_orr(),
        PolicySpec::wrr(),
        PolicySpec::DynamicLeastLoad,
    ]
}

/// Which dispatcher to replay in [`fig2_deviations`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig2Dispatcher {
    /// Round-robin based dispatching (Algorithm 2).
    RoundRobin,
    /// Random based dispatching.
    Random,
}

/// Figure 2's dispatch-only experiment: 8 computers with
/// [`fig2_fractions`], hyperexponential arrivals with mean 2.2 s (CV 3),
/// 30 consecutive 120-second intervals. Returns the workload allocation
/// deviation of each interval.
///
/// Service plays no role in the deviation metric, so this replays the
/// dispatcher directly against the arrival process — the same decision
/// code the full simulator runs, without the servers.
pub fn fig2_deviations(dispatcher: Fig2Dispatcher, seed: u64) -> Vec<f64> {
    let fractions = fig2_fractions();
    let intervals = 30usize;
    let interval_len = 120.0;
    let horizon = intervals as f64 * interval_len;

    let mut arrivals = IidArrivals::new(Hyperexp2::from_mean_cv(2.2, 3.0));
    let mut rng_arrival = Rng64::stream(seed, 0);
    let mut rng_dispatch = Rng64::stream(seed, 2);
    let mut tracker = DeviationTracker::new(&fractions, interval_len, 0.0);

    let mut rr;
    let mut ran;
    let policy: &mut dyn Policy = match dispatcher {
        Fig2Dispatcher::RoundRobin => {
            rr = RoundRobinDispatch::new(&fractions, "RR");
            &mut rr
        }
        Fig2Dispatcher::Random => {
            ran = RandomDispatch::new(&fractions, "RAN");
            &mut ran
        }
    };

    let speeds = vec![1.0; fractions.len()];
    let qlens = vec![0usize; fractions.len()];
    let mut t = arrivals.next_interarrival(&mut rng_arrival);
    while t < horizon {
        let ctx = DispatchCtx {
            now: t,
            job_size: 1.0,
            queue_lens: &qlens,
            speeds: &speeds,
            true_load_index: None,
        };
        let target = policy.choose(&ctx, &mut rng_dispatch);
        tracker.record(t, target);
        t += arrivals.next_interarrival(&mut rng_arrival);
    }
    tracker.advance_to(horizon);
    tracker.deviations().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_aggregate_speed_is_44() {
        // §5.3: "aggregate processing speed is 44".
        let s = table3_speeds();
        assert_eq!(s.len(), 15);
        assert!((s.iter().sum::<f64>() - 44.0).abs() < 1e-12);
    }

    #[test]
    fn fig2_fractions_sum_to_one() {
        let f = fig2_fractions();
        assert_eq!(f.len(), 8);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig3_config_shape() {
        let cfg = fig3_config(20.0);
        assert_eq!(cfg.speeds.len(), 18);
        assert_eq!(cfg.speeds.iter().filter(|&&s| s == 20.0).count(), 2);
        assert_eq!(cfg.speeds.iter().filter(|&&s| s == 1.0).count(), 16);
        assert_eq!(cfg.utilization, 0.70);
    }

    #[test]
    fn fig4_config_shape() {
        let cfg = fig4_config(10);
        assert_eq!(cfg.speeds.len(), 10);
        assert_eq!(cfg.speeds.iter().filter(|&&s| s == 10.0).count(), 5);
    }

    #[test]
    #[should_panic(expected = "even system sizes")]
    fn fig4_rejects_odd() {
        fig4_config(3);
    }

    #[test]
    fn fig5_config_sets_utilization() {
        let cfg = fig5_config(0.9);
        assert_eq!(cfg.utilization, 0.9);
        assert_eq!(cfg.speeds, table3_speeds());
    }

    #[test]
    fn fig6_policy_count() {
        let p = fig6_policies(&fig6_errors());
        assert_eq!(p.len(), 8); // ORR + WRR + 6 error variants
    }

    #[test]
    fn fig2_produces_30_intervals() {
        let d = fig2_deviations(Fig2Dispatcher::RoundRobin, 1);
        assert_eq!(d.len(), 30);
        assert!(d.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn fig2_round_robin_beats_random() {
        // The figure's message: round-robin deviations are much lower
        // than random ones. A single 30-interval trace is noisy (the
        // CV-3 arrival process produces near-empty intervals that hurt
        // both dispatchers alike), so aggregate several seeds.
        let mut rr_all = Vec::new();
        let mut ran_all = Vec::new();
        for seed in 0..10 {
            rr_all.extend(fig2_deviations(Fig2Dispatcher::RoundRobin, seed));
            ran_all.extend(fig2_deviations(Fig2Dispatcher::Random, seed));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&rr_all) < mean(&ran_all) / 2.0,
            "rr mean {} vs random mean {}",
            mean(&rr_all),
            mean(&ran_all)
        );
        // Median interval: round-robin should be far smoother.
        let median = |v: &[f64]| {
            let mut s = v.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(
            median(&rr_all) < median(&ran_all) / 3.0,
            "rr median {} vs random median {}",
            median(&rr_all),
            median(&ran_all)
        );
    }

    #[test]
    fn fig2_is_deterministic_per_seed() {
        let a = fig2_deviations(Fig2Dispatcher::Random, 9);
        let b = fig2_deviations(Fig2Dispatcher::Random, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn headline_has_five_policies() {
        assert_eq!(headline_policies().len(), 5);
    }

    #[test]
    fn faults_config_validates_and_carries_spec() {
        let cfg = faults_config(0.7, 3_600.0, 120.0);
        cfg.validate().unwrap();
        let spec = cfg.faults.expect("fault spec present");
        spec.validate().unwrap();
        assert_eq!(cfg.speeds, table3_speeds());
    }

    #[test]
    fn fault_roster_has_reopt_orr() {
        let roster = fault_policies();
        assert_eq!(roster.len(), 4);
        assert!(roster.iter().any(|p| p.label() == "ReORR"));
    }
}

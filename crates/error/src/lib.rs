//! # hetsched-error — the workspace's shared typed error
//!
//! Every fallible entry point in the workspace — configuration
//! validation, the Algorithm-1 solvers, policy construction, the
//! experiment harness — reports failures through [`HetschedError`]
//! instead of panicking or passing bare `String`s around. The variants
//! mirror the ways a heterogeneous cluster can be degenerate: no
//! computers, every computer down, an arrival rate that saturates the
//! aggregate capacity, or plain bad parameters.
//!
//! The crate is dependency-free so every layer (including `queueing`,
//! which sits below the simulator) can use it.

#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

/// The workspace-wide error type.
#[derive(Debug, Clone, PartialEq)]
pub enum HetschedError {
    /// The cluster/system has no computers at all.
    NoComputers,
    /// Every computer in the (sub)set under consideration is down.
    AllServersDown,
    /// The arrival rate meets or exceeds the aggregate service capacity,
    /// so no finite allocation exists (λ ≥ μ·Σs).
    Saturated,
    /// A numeric argument is out of its admissible range.
    BadParameter(String),
    /// A cluster/experiment configuration failed validation.
    InvalidConfig(String),
    /// A policy specification cannot be built for the given cluster.
    InvalidPolicy(String),
    /// A solver failed to produce a usable allocation.
    Solver(String),
    /// Serializing a result artifact (JSON/JSONL/CSV) failed.
    Serialization(String),
    /// A bounded runtime structure (e.g. the job slab's `u32` index
    /// space) ran out of room.
    Capacity(String),
    /// An error wrapped with the context it occurred in.
    Context {
        /// What was being attempted (e.g. the sweep point's name).
        context: String,
        /// The underlying error.
        source: Box<HetschedError>,
    },
}

impl HetschedError {
    /// Wraps the error with a human-readable context label, rendered as
    /// `"{context}: {self}"`.
    #[must_use]
    pub fn context(self, context: impl Into<String>) -> Self {
        HetschedError::Context {
            context: context.into(),
            source: Box::new(self),
        }
    }

    /// The innermost error, with all context layers stripped.
    pub fn root_cause(&self) -> &HetschedError {
        match self {
            HetschedError::Context { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for HetschedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HetschedError::NoComputers => write!(f, "system has no computers"),
            HetschedError::AllServersDown => write!(f, "every computer in the system is down"),
            HetschedError::Saturated => write!(
                f,
                "arrival rate saturates the aggregate capacity (λ ≥ μ·Σs)"
            ),
            HetschedError::BadParameter(msg) => write!(f, "{msg}"),
            HetschedError::InvalidConfig(msg) => write!(f, "{msg}"),
            HetschedError::InvalidPolicy(msg) => write!(f, "{msg}"),
            HetschedError::Solver(msg) => write!(f, "solver failed: {msg}"),
            HetschedError::Serialization(msg) => write!(f, "serialization failed: {msg}"),
            HetschedError::Capacity(msg) => write!(f, "capacity exhausted: {msg}"),
            HetschedError::Context { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl Error for HetschedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HetschedError::Context { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// Lets `?` convert a typed error into the `Result<_, String>` signatures
/// still used at the CLI boundary.
impl From<HetschedError> for String {
    fn from(e: HetschedError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        assert_eq!(
            HetschedError::NoComputers.to_string(),
            "system has no computers"
        );
        assert!(HetschedError::Saturated.to_string().contains("saturates"));
        assert_eq!(
            HetschedError::BadParameter("rho must lie in (0,1)".into()).to_string(),
            "rho must lie in (0,1)"
        );
    }

    #[test]
    fn context_nests_and_strips() {
        let e = HetschedError::Saturated
            .context("point 'rho=0.9'")
            .context("sweep");
        assert_eq!(
            e.to_string(),
            "sweep: point 'rho=0.9': arrival rate saturates the aggregate capacity (λ ≥ μ·Σs)"
        );
        assert_eq!(e.root_cause(), &HetschedError::Saturated);
    }

    #[test]
    fn error_source_chain() {
        let e = HetschedError::NoComputers.context("building policy");
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&HetschedError::NoComputers).is_none());
    }

    #[test]
    fn serialization_variant_displays_cause() {
        let e = HetschedError::Serialization("key must be a string".into());
        assert_eq!(e.to_string(), "serialization failed: key must be a string");
        assert_eq!(e.root_cause(), &e.clone());
    }

    #[test]
    fn capacity_variant_displays_cause() {
        let e = HetschedError::Capacity("job slab index space (u32) full".into());
        assert_eq!(
            e.to_string(),
            "capacity exhausted: job slab index space (u32) full"
        );
        assert_eq!(e.root_cause(), &e.clone());
    }

    #[test]
    fn converts_to_string() {
        let s: String = HetschedError::AllServersDown.into();
        assert_eq!(s, "every computer in the system is down");
    }
}

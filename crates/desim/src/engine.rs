//! Simulation engine: the event loop.
//!
//! [`Engine`] owns the clock and the future-event list; an [`Actor`] is the
//! user's model. The engine pops the earliest event, advances the clock to
//! its timestamp, and calls [`Actor::handle`] with a [`Scheduler`] facade
//! through which the model schedules follow-up events (and may cancel
//! pending ones or stop the run).
//!
//! The engine is generic over its [`FutureEventList`] backend, defaulting
//! to the binary-heap [`EventQueue`]; [`HeapEngine`] and [`CalendarEngine`]
//! name the two shipped configurations. Because every backend honours the
//! same determinism contract (see [`crate::fel`]), swapping backends never
//! changes results — only throughput.
//!
//! The loop guarantees:
//!
//! * the clock never moves backwards;
//! * simultaneous events are delivered in scheduling order;
//! * `run_until(t)` delivers every event with timestamp `<= t` and leaves
//!   the clock at exactly `t`, so time-weighted statistics can be closed
//!   out at the horizon.

use std::marker::PhantomData;

use crate::calendar::CalendarQueue;
use crate::fel::{FelStats, FutureEventList};
use crate::queue::EventQueue;
use crate::slab::EventId;
use crate::time::SimTime;

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The time horizon passed to [`Engine::run_until`] was reached.
    HorizonReached,
    /// The actor called [`Scheduler::stop`].
    Stopped,
}

/// Scheduling facade handed to the actor during event handling.
///
/// Borrowing the queue through this facade (instead of the whole engine)
/// lets the actor schedule and cancel while the engine iterates.
pub struct Scheduler<'a, E, Q = EventQueue<E>> {
    queue: &'a mut Q,
    now: SimTime,
    stop: &'a mut bool,
    _payload: PhantomData<fn() -> E>,
}

impl<'a, E, Q: FutureEventList<E>> Scheduler<'a, E, Q> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire `delay` seconds from now.
    ///
    /// # Panics
    /// Panics if `delay` is NaN, infinite, or negative — enqueueing into
    /// the past would silently corrupt every statistic downstream.
    #[inline]
    pub fn schedule_in(&mut self, delay: f64, payload: E) -> EventId {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "schedule_in: delay must be finite and non-negative, got {delay}"
        );
        self.queue.schedule(self.now.after(delay), payload)
    }

    /// Schedules `payload` at an absolute time (must not be in the past).
    ///
    /// # Panics
    /// Panics if `time` precedes the current clock.
    #[inline]
    pub fn schedule_at(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        self.queue.schedule(time, payload)
    }

    /// Cancels a pending event; returns `true` if it was live.
    #[inline]
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Requests that the run loop return after this event is handled.
    #[inline]
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// The model: receives every event in timestamp order.
///
/// Generic over the event-list backend so the same model can run on any
/// engine configuration; the default keeps existing `Actor<E>` impls and
/// bounds compiling unchanged.
pub trait Actor<E, Q = EventQueue<E>> {
    /// Handles one event at time `now`.
    fn handle(&mut self, now: SimTime, event: E, sched: &mut Scheduler<'_, E, Q>);
}

// Closures can serve as throwaway actors in tests and examples.
impl<E, Q, F> Actor<E, Q> for F
where
    F: FnMut(SimTime, E, &mut Scheduler<'_, E, Q>),
{
    fn handle(&mut self, now: SimTime, event: E, sched: &mut Scheduler<'_, E, Q>) {
        self(now, event, sched)
    }
}

/// The discrete-event engine: clock + future-event list + run loop.
pub struct Engine<E, Q = EventQueue<E>> {
    queue: Q,
    now: SimTime,
    _payload: PhantomData<fn() -> E>,
}

/// An [`Engine`] on the binary-heap backend (the default).
pub type HeapEngine<E> = Engine<E, EventQueue<E>>;

/// An [`Engine`] on the calendar-queue backend.
pub type CalendarEngine<E> = Engine<E, CalendarQueue<E>>;

impl<E, Q: FutureEventList<E> + Default> Default for Engine<E, Q> {
    fn default() -> Self {
        Self::with_queue(Q::default())
    }
}

impl<E> Engine<E> {
    /// Creates a heap-backed engine with the clock at zero.
    pub fn new() -> Self {
        Self::with_queue(EventQueue::new())
    }

    /// Creates a heap-backed engine with a pre-allocated event queue.
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_queue(EventQueue::with_capacity(cap))
    }
}

impl<E, Q: FutureEventList<E>> Engine<E, Q> {
    /// Creates an engine running on an explicit event-list backend.
    pub fn with_queue(queue: Q) -> Self {
        Engine {
            queue,
            now: SimTime::ZERO,
            _payload: PhantomData,
        }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event before the run starts (or between runs).
    pub fn schedule_at(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        self.queue.schedule(time, payload)
    }

    /// Schedules an event `delay` seconds from the current clock.
    ///
    /// # Panics
    /// Panics if `delay` is NaN, infinite, or negative.
    pub fn schedule_in(&mut self, delay: f64, payload: E) -> EventId {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "schedule_in: delay must be finite and non-negative, got {delay}"
        );
        self.queue.schedule(self.now.after(delay), payload)
    }

    /// Number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.queue.scheduled_total()
    }

    /// Number of events ever delivered to an actor.
    pub fn processed_total(&self) -> u64 {
        self.queue.popped_total()
    }

    /// Snapshot of the backend's lifetime traffic counters.
    ///
    /// Purely observational: reading the counters never mutates the
    /// queue, so models may call this at any point (typically after
    /// `run_until`) without perturbing determinism.
    pub fn fel_stats(&self) -> FelStats {
        self.queue.stats()
    }

    /// Runs until the queue drains or the actor stops the run.
    pub fn run<A: Actor<E, Q>>(&mut self, actor: &mut A) -> RunOutcome {
        self.run_inner(actor, None)
    }

    /// Runs until `horizon`, delivering every event with `time <= horizon`.
    ///
    /// On return the clock equals `horizon` unless the actor stopped the
    /// run early (then it equals the stop event's timestamp).
    pub fn run_until<A: Actor<E, Q>>(&mut self, actor: &mut A, horizon: SimTime) -> RunOutcome {
        self.run_inner(actor, Some(horizon))
    }

    fn run_inner<A: Actor<E, Q>>(&mut self, actor: &mut A, horizon: Option<SimTime>) -> RunOutcome {
        let mut stop = false;
        loop {
            // Respect the horizon before popping, so events beyond it stay
            // queued for a potential continuation run.
            if let Some(h) = horizon {
                match self.queue.peek_time() {
                    Some(t) if t <= h => {}
                    _ => {
                        self.now = h.max(self.now);
                        return RunOutcome::HorizonReached;
                    }
                }
            }
            let Some(ev) = self.queue.pop() else {
                return RunOutcome::Drained;
            };
            debug_assert!(ev.time >= self.now, "event queue delivered out of order");
            self.now = ev.time;
            let mut sched = Scheduler {
                queue: &mut self.queue,
                now: self.now,
                stop: &mut stop,
                _payload: PhantomData,
            };
            actor.handle(ev.time, ev.payload, &mut sched);
            if stop {
                return RunOutcome::Stopped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_and_events_ordered() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::new(2.0), 2u32);
        engine.schedule_at(SimTime::new(1.0), 1u32);
        engine.schedule_at(SimTime::new(3.0), 3u32);
        let mut seen = Vec::new();
        let outcome = engine.run(&mut |now: SimTime, ev: u32, _: &mut Scheduler<u32>| {
            seen.push((now.as_secs(), ev));
        });
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(seen, vec![(1.0, 1), (2.0, 2), (3.0, 3)]);
    }

    #[test]
    fn actor_can_schedule_followups() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, 0u32);
        let mut count = 0u32;
        engine.run(&mut |_now: SimTime, ev: u32, sched: &mut Scheduler<u32>| {
            count += 1;
            if ev < 5 {
                sched.schedule_in(1.0, ev + 1);
            }
        });
        assert_eq!(count, 6);
        assert_eq!(engine.now().as_secs(), 5.0);
    }

    #[test]
    fn calendar_backend_runs_identically() {
        // The same scripted workload through both backends: identical
        // delivery order, clock, and counters.
        fn drive<Q: FutureEventList<u32>>(mut engine: Engine<u32, Q>) -> (Vec<(f64, u32)>, f64) {
            engine.schedule_at(SimTime::ZERO, 0u32);
            engine.schedule_at(SimTime::new(2.0), 100u32);
            engine.schedule_at(SimTime::new(2.0), 101u32);
            let mut seen = Vec::new();
            engine.run_until(
                &mut |now: SimTime, ev: u32, sched: &mut Scheduler<u32, Q>| {
                    seen.push((now.as_secs(), ev));
                    if ev < 5 {
                        sched.schedule_in(1.0, ev + 1);
                    }
                },
                SimTime::new(100.0),
            );
            (seen, engine.now().as_secs())
        }
        let heap = drive(HeapEngine::<u32>::new());
        let cal = drive(CalendarEngine::<u32>::with_queue(CalendarQueue::new()));
        assert_eq!(heap, cal);
        assert_eq!(heap.1, 100.0);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, ());
        let mut count = 0u32;
        let outcome = engine.run_until(
            &mut |_now: SimTime, _: (), sched: &mut Scheduler<()>| {
                count += 1;
                sched.schedule_in(1.0, ());
            },
            SimTime::new(10.5),
        );
        assert_eq!(outcome, RunOutcome::HorizonReached);
        // Events at t = 0, 1, ..., 10 fire; t = 11 stays queued.
        assert_eq!(count, 11);
        assert_eq!(engine.now().as_secs(), 10.5);
    }

    #[test]
    fn horizon_event_inclusive() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::new(5.0), ());
        let mut fired = false;
        engine.run_until(
            &mut |_: SimTime, _: (), _: &mut Scheduler<()>| fired = true,
            SimTime::new(5.0),
        );
        assert!(fired, "event exactly at the horizon must fire");
    }

    #[test]
    fn continuation_after_horizon() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::new(1.0), 1u32);
        engine.schedule_at(SimTime::new(3.0), 3u32);
        let mut seen = Vec::new();
        engine.run_until(
            &mut |_: SimTime, ev: u32, _: &mut Scheduler<u32>| seen.push(ev),
            SimTime::new(2.0),
        );
        assert_eq!(seen, vec![1]);
        assert_eq!(engine.now().as_secs(), 2.0);
        engine.run(&mut |_: SimTime, ev: u32, _: &mut Scheduler<u32>| seen.push(ev));
        assert_eq!(seen, vec![1, 3]);
    }

    #[test]
    fn stop_ends_run_immediately() {
        let mut engine = Engine::new();
        for i in 0..10 {
            engine.schedule_at(SimTime::new(i as f64), i);
        }
        let mut seen = Vec::new();
        let outcome = engine.run(&mut |_: SimTime, ev: i32, sched: &mut Scheduler<i32>| {
            seen.push(ev);
            if ev == 3 {
                sched.stop();
            }
        });
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(engine.now().as_secs(), 3.0);
    }

    #[test]
    fn cancel_from_actor() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, "start");
        let victim = engine.schedule_at(SimTime::new(2.0), "victim");
        let mut seen: Vec<String> = Vec::new();
        engine.run(&mut |_: SimTime, ev: &str, sched: &mut Scheduler<&str>| {
            seen.push(ev.to_owned());
            if ev == "start" {
                assert!(sched.cancel(victim));
            }
        });
        assert_eq!(seen, vec!["start".to_owned()]);
    }

    #[test]
    fn empty_run_drains() {
        let mut engine: Engine<()> = Engine::new();
        assert_eq!(
            engine.run(&mut |_: SimTime, _: (), _: &mut Scheduler<()>| {}),
            RunOutcome::Drained
        );
        assert_eq!(engine.now(), SimTime::ZERO);
    }

    #[test]
    fn run_until_with_empty_queue_advances_clock() {
        let mut engine: Engine<()> = Engine::new();
        let outcome = engine.run_until(
            &mut |_: SimTime, _: (), _: &mut Scheduler<()>| {},
            SimTime::new(7.0),
        );
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(engine.now().as_secs(), 7.0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::new(5.0), ());
        engine.run(&mut |_: SimTime, _: (), _: &mut Scheduler<()>| {});
        engine.schedule_at(SimTime::new(1.0), ());
    }

    #[test]
    #[should_panic(expected = "schedule_in: delay must be finite")]
    fn engine_rejects_negative_delay() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule_in(-1.0, ());
    }

    #[test]
    #[should_panic(expected = "schedule_in: delay must be finite")]
    fn engine_rejects_nan_delay() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule_in(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "schedule_in: delay must be finite")]
    fn scheduler_rejects_bad_delay() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule_at(SimTime::ZERO, ());
        engine.run(&mut |_: SimTime, _: (), sched: &mut Scheduler<()>| {
            sched.schedule_in(f64::INFINITY, ());
        });
    }

    #[test]
    fn processed_counter() {
        let mut engine = Engine::new();
        for i in 0..5 {
            engine.schedule_at(SimTime::new(i as f64), ());
        }
        engine.run(&mut |_: SimTime, _: (), _: &mut Scheduler<()>| {});
        assert_eq!(engine.processed_total(), 5);
        assert_eq!(engine.scheduled_total(), 5);
    }
}

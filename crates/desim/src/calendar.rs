//! Calendar queue — an O(1)-amortized future-event list.
//!
//! R. Brown's calendar queue (CACM 1988) hashes events into "days"
//! (buckets) of a circular "year": an event at time `t` lands in bucket
//! `⌊t / width⌋ mod nbuckets`. Dequeueing walks the calendar from the
//! current day, taking events that fall within the day's current year;
//! enqueue and dequeue are O(1) amortized when the bucket width matches
//! the event-time density, which the structure maintains by resizing and
//! re-estimating the width as the population grows and shrinks.
//!
//! For the cluster simulator's workloads the binary heap in
//! [`crate::queue`] is typically faster in practice (its constants are
//! tiny and event populations are small); the calendar queue is provided
//! for large-population models and benchmarked against the heap in
//! `hetsched-bench`'s `event_queue` bench. Same determinism contract:
//! equal timestamps dequeue in insertion order.

use crate::time::SimTime;

#[derive(Debug, Clone)]
struct Entry<E> {
    time: f64,
    seq: u64,
    payload: E,
}

/// Brown's calendar queue with FIFO tie-breaking.
///
/// The day an event belongs to is always computed by the same integer
/// expression (`⌊t / width⌋`), for both placement and retrieval — a
/// subtle necessity: comparing times against `(day+1)·width` directly
/// can disagree with the placement rounding at day boundaries and strand
/// events for a whole extra year.
pub struct CalendarQueue<E> {
    /// Buckets, each sorted ascending by (time, seq).
    buckets: Vec<Vec<Entry<E>>>,
    /// Width of one day in simulated seconds.
    width: f64,
    /// Virtual day the dequeue cursor is on.
    cur_day: u64,
    /// Priority of the last dequeued event (dequeues below this would
    /// violate monotonicity and indicate a bug).
    last_time: f64,
    len: usize,
    next_seq: u64,
}

impl<E> CalendarQueue<E> {
    /// Creates an empty calendar with a small initial layout.
    pub fn new() -> Self {
        Self::with_layout(2, 1.0, 0.0)
    }

    fn with_layout(nbuckets: usize, width: f64, start: f64) -> Self {
        let mut q = CalendarQueue {
            buckets: Vec::new(),
            width,
            cur_day: 0,
            last_time: start,
            len: 0,
            next_seq: 0,
        };
        q.buckets.resize_with(nbuckets, Vec::new);
        q.cur_day = q.day_of(start);
        q
    }

    #[inline]
    fn day_of(&self, time: f64) -> u64 {
        (time / self.width) as u64
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the calendar is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `payload` at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let t = time.as_secs();
        let entry = Entry {
            time: t,
            seq: self.next_seq,
            payload,
        };
        self.next_seq += 1;
        self.insert(entry);
        self.len += 1;
        if self.len > 2 * self.buckets.len() {
            self.resize(2 * self.buckets.len());
        }
    }

    fn insert(&mut self, entry: Entry<E>) {
        let n = self.buckets.len();
        let idx = (self.day_of(entry.time) % n as u64) as usize;
        let bucket = &mut self.buckets[idx];
        // Sorted insert by (time, seq); buckets are short when the width
        // is well tuned, so the linear search from the back (newest
        // events usually go last) is cheap.
        let pos = bucket
            .iter()
            .rposition(|e| (e.time, e.seq) <= (entry.time, entry.seq))
            .map(|p| p + 1)
            .unwrap_or(0);
        bucket.insert(pos, entry);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        // Walk at most one full year from the cursor. An event belongs to
        // the cursor's day iff its day index matches (`<=` also scoops up
        // any event from an already-passed day, which cannot be earlier
        // than the last pop by construction).
        for _ in 0..n {
            let bucket_idx = (self.cur_day % n as u64) as usize;
            let head_due = self.buckets[bucket_idx]
                .first()
                .is_some_and(|e| self.day_of(e.time) <= self.cur_day);
            if head_due {
                let entry = self.buckets[bucket_idx].remove(0);
                self.len -= 1;
                debug_assert!(
                    entry.time >= self.last_time - 1e-9,
                    "calendar went backwards"
                );
                self.last_time = entry.time;
                if self.len < self.buckets.len() / 2 && self.buckets.len() > 2 {
                    self.resize(self.buckets.len() / 2);
                }
                return Some((SimTime::new(entry.time.max(0.0)), entry.payload));
            }
            self.cur_day += 1;
        }
        // A whole year was empty: the next event is far away — jump the
        // cursor directly to the global minimum.
        let (bi, t) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.first().map(|e| (i, e.time)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
            .expect("len > 0 implies a head exists");
        self.cur_day = self.day_of(t);
        let entry = self.buckets[bi].remove(0);
        self.len -= 1;
        self.last_time = entry.time;
        Some((SimTime::new(entry.time.max(0.0)), entry.payload))
    }

    /// Rebuilds the calendar with `nbuckets` buckets and a re-estimated
    /// width.
    fn resize(&mut self, nbuckets: usize) {
        let width = self.estimate_width();
        let mut old = std::mem::take(&mut self.buckets);
        self.buckets.resize_with(nbuckets, Vec::new);
        self.width = width;
        self.cur_day = self.day_of(self.last_time);
        for bucket in &mut old {
            for entry in bucket.drain(..) {
                self.insert(entry);
            }
        }
    }

    /// Brown's width heuristic: sample events near the head and use a
    /// multiple of their average separation.
    fn estimate_width(&self) -> f64 {
        let mut sample: Vec<f64> = Vec::with_capacity(32);
        for bucket in &self.buckets {
            for e in bucket {
                sample.push(e.time);
                if sample.len() >= 32 {
                    break;
                }
            }
            if sample.len() >= 32 {
                break;
            }
        }
        if sample.len() < 2 {
            return self.width.max(1e-12);
        }
        sample.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let span = sample.last().expect("non-empty") - sample[0];
        let avg_gap = span / (sample.len() - 1) as f64;
        if avg_gap <= 0.0 {
            self.width.max(1e-12)
        } else {
            3.0 * avg_gap
        }
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use crate::rng::Rng64;

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = CalendarQueue::new();
        for i in 0..50 {
            q.schedule(t(7.0), i);
        }
        for i in 0..50 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn sparse_events_trigger_year_jump() {
        let mut q = CalendarQueue::new();
        q.schedule(t(0.5), "near");
        q.schedule(t(1.0e6), "far");
        assert_eq!(q.pop().unwrap().1, "near");
        // The far event lies many years ahead of the cursor.
        assert_eq!(q.pop().unwrap().1, "far");
    }

    #[test]
    fn growth_and_shrink_preserve_content() {
        let mut q = CalendarQueue::new();
        for i in 0..1000u32 {
            q.schedule(t(i as f64 * 0.1), i);
        }
        assert_eq!(q.len(), 1000);
        for i in 0..1000u32 {
            let (_, v) = q.pop().expect("present");
            assert_eq!(v, i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_hold_pattern() {
        // Pop one, push one — the DES steady state.
        let mut q = CalendarQueue::new();
        let mut rng = Rng64::from_seed(3);
        for i in 0..64u32 {
            q.schedule(t(rng.next_f64() * 10.0), i);
        }
        let mut last = 0.0;
        for _ in 0..10_000 {
            let (time, v) = q.pop().expect("non-empty");
            assert!(time.as_secs() >= last);
            last = time.as_secs();
            q.schedule(time.after(rng.next_f64() * 10.0), v);
        }
    }

    #[test]
    fn differential_against_binary_heap() {
        // Same random schedule through both structures must produce the
        // same (time, payload) sequence — including FIFO tie-breaks.
        let mut rng = Rng64::from_seed(9);
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        // Mixed workload: bursts of ties, uniform spread, long gaps.
        for i in 0..5_000u32 {
            let time = match i % 3 {
                0 => (rng.next_f64() * 100.0).floor(), // heavy ties
                1 => rng.next_f64() * 1000.0,
                _ => rng.next_f64() * 10.0 + 5_000.0,
            };
            cal.schedule(t(time), i);
            heap.schedule(t(time), i);
        }
        loop {
            match (cal.pop(), heap.pop()) {
                (None, None) => break,
                (Some((ct, cv)), Some(h)) => {
                    assert_eq!(ct, h.time, "times diverge");
                    assert_eq!(cv, h.payload, "payloads diverge at {ct}");
                }
                (a, b) => panic!("length mismatch: {:?} vs {:?}", a.is_some(), b.is_some()),
            }
        }
    }

    #[test]
    fn zero_time_events() {
        let mut q = CalendarQueue::new();
        q.schedule(t(0.0), "z");
        assert_eq!(q.pop().unwrap().1, "z");
    }
}

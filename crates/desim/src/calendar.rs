//! Calendar queue — an O(1)-amortized future-event list.
//!
//! R. Brown's calendar queue (CACM 1988) hashes events into "days"
//! (buckets) of a circular "year": an event at time `t` lands in bucket
//! `⌊t / width⌋ mod nbuckets`. Dequeueing walks the calendar from the
//! current day, taking events that fall within the day's current year;
//! enqueue and dequeue are O(1) amortized when the bucket width matches
//! the event-time density, which the structure maintains by resizing and
//! re-estimating the width as the population grows and shrinks.
//!
//! The calendar implements the full [`FutureEventList`] contract — FIFO
//! ties, peeking, and generation-stamped cancellation — so the
//! [`Engine`](crate::engine::Engine) can run on it interchangeably with
//! the binary heap. Buckets store the same 24-byte `Copy` keys as the
//! heap backend, with payloads parked in a shared
//! [`PayloadSlab`](crate::slab); cancelled keys are purged lazily when
//! they reach a bucket head or during a resize.
//!
//! For the cluster simulator's workloads the binary heap in
//! [`crate::queue`] is typically faster in practice (its constants are
//! tiny and event populations are small); the calendar queue pays off for
//! large-population models, and both are compared in `hetsched-bench`'s
//! `event_queue` / `event_kernel` benches and the `fig_kernel` harness.

use crate::fel::{FelStats, FutureEventList, ScheduledEvent};
use crate::slab::{EventId, PayloadSlab};
use crate::time::SimTime;

/// A bucket key: timestamp, FIFO sequence number, and slab reference.
#[derive(Debug, Clone, Copy)]
struct Entry {
    time: f64,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl Entry {
    #[inline]
    fn id(self) -> EventId {
        EventId::new(self.slot, self.gen)
    }
}

/// Brown's calendar queue with FIFO tie-breaking.
///
/// The day an event belongs to is always computed by the same integer
/// expression (`⌊t / width⌋`), for both placement and retrieval — a
/// subtle necessity: comparing times against `(day+1)·width` directly
/// can disagree with the placement rounding at day boundaries and strand
/// events for a whole extra year.
pub struct CalendarQueue<E> {
    /// Buckets, each sorted ascending by (time, seq).
    buckets: Vec<Vec<Entry>>,
    /// Payloads, keyed by generation-stamped slots.
    slab: PayloadSlab<E>,
    /// Width of one day in simulated seconds.
    width: f64,
    /// Virtual day the dequeue cursor is on.
    cur_day: u64,
    /// Priority of the last dequeued event (dequeues below this would
    /// violate monotonicity and indicate a bug).
    last_time: f64,
    /// Keys stored in buckets, including not-yet-purged cancelled ones
    /// (drives the resize thresholds; `len()` reports live events).
    stored: usize,
    next_seq: u64,
    scheduled_total: u64,
    popped_total: u64,
    cancelled_total: u64,
    high_water: u64,
    resizes: u64,
}

impl<E> CalendarQueue<E> {
    /// Creates an empty calendar with a small initial layout.
    pub fn new() -> Self {
        Self::with_layout(2, 1.0, 0.0)
    }

    /// Creates an empty calendar with payload capacity pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::with_layout(2, 1.0, 0.0);
        q.slab = PayloadSlab::with_capacity(cap);
        q
    }

    fn with_layout(nbuckets: usize, width: f64, start: f64) -> Self {
        let mut q = CalendarQueue {
            buckets: Vec::new(),
            slab: PayloadSlab::new(),
            width,
            cur_day: 0,
            last_time: start,
            stored: 0,
            next_seq: 0,
            scheduled_total: 0,
            popped_total: 0,
            cancelled_total: 0,
            high_water: 0,
            resizes: 0,
        };
        q.buckets.resize_with(nbuckets, Vec::new);
        q.cur_day = q.day_of(start);
        q
    }

    #[inline]
    fn day_of(&self, time: f64) -> u64 {
        (time / self.width) as u64
    }

    /// Number of pending (live) events.
    pub fn len(&self) -> usize {
        self.slab.live()
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `payload` at `time`; returns a cancellation id.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let t = time.as_secs();
        let id = self.slab.insert(payload);
        let entry = Entry {
            time: t,
            seq: self.next_seq,
            slot: id.slot(),
            gen: id.gen(),
        };
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.high_water = self.high_water.max(self.slab.live() as u64);
        // A peek's year-jump may have parked the cursor past this event's
        // day; pull it back so the walk cannot skip the event.
        let day = self.day_of(t);
        if day < self.cur_day {
            self.cur_day = day;
        }
        self.insert(entry);
        self.stored += 1;
        if self.stored > 2 * self.buckets.len() {
            self.resize(2 * self.buckets.len());
        }
        id
    }

    fn insert(&mut self, entry: Entry) {
        let n = self.buckets.len();
        let idx = (self.day_of(entry.time) % n as u64) as usize;
        let bucket = &mut self.buckets[idx];
        // Sorted insert by (time, seq); buckets are short when the width
        // is well tuned, so the linear search from the back (newest
        // events usually go last) is cheap.
        let pos = bucket
            .iter()
            .rposition(|e| (e.time, e.seq) <= (entry.time, entry.seq))
            .map(|p| p + 1)
            .unwrap_or(0);
        bucket.insert(pos, entry);
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` iff the id named a still-pending event. O(1): the
    /// slot's generation is bumped; the stale bucket key is purged when
    /// it reaches a bucket head or during a resize.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let live = self.slab.take(id).is_some();
        self.cancelled_total += live as u64;
        live
    }

    /// Purges stale keys from the head of bucket `bi` and returns the
    /// live head, if any.
    fn live_head(&mut self, bi: usize) -> Option<Entry> {
        while let Some(&head) = self.buckets[bi].first() {
            if self.slab.is_live(head.id()) {
                return Some(head);
            }
            self.buckets[bi].remove(0);
            self.stored -= 1;
        }
        None
    }

    /// Advances the cursor to the bucket holding the earliest live event
    /// and returns its index (the bucket's head is that event).
    fn next_position(&mut self) -> Option<usize> {
        if self.slab.live() == 0 {
            return None;
        }
        let n = self.buckets.len();
        // Walk at most one full year from the cursor. An event belongs to
        // the cursor's day iff its day index matches (`<=` also scoops up
        // any event from an already-passed day, which cannot be earlier
        // than the last pop by construction).
        for _ in 0..n {
            let bi = (self.cur_day % n as u64) as usize;
            if let Some(head) = self.live_head(bi) {
                if self.day_of(head.time) <= self.cur_day {
                    return Some(bi);
                }
            }
            self.cur_day += 1;
        }
        // A whole year was empty: the next event is far away — jump the
        // cursor directly to the global minimum. Every bucket head is
        // live here (the walk just purged stale heads), and equal times
        // always share a bucket, so the minimum is unambiguous.
        let (bi, t) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.first().map(|e| (i, (e.time, e.seq))))
            .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then(a.1 .1.cmp(&b.1 .1)))
            .map(|(i, (t, _))| (i, t))
            .expect("live > 0 implies a live head exists");
        self.cur_day = self.day_of(t);
        Some(bi)
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let bi = self.next_position()?;
        let entry = self.buckets[bi].remove(0);
        self.stored -= 1;
        let payload = self
            .slab
            .take(entry.id())
            .expect("next_position returns a live head");
        debug_assert!(
            entry.time >= self.last_time - 1e-9,
            "calendar went backwards"
        );
        self.last_time = entry.time;
        self.popped_total += 1;
        // Shrink lazily (quarter occupancy, not half): a queueing model's
        // event population breathes with the load, and the classic
        // half-occupancy trigger sits right where that oscillation lives,
        // thrashing grow/shrink rebuilds hundreds of times per run. The
        // wider band trades a little bucket sparsity for rebuild churn.
        if self.stored < self.buckets.len() / 4 && self.buckets.len() > 2 {
            self.resize(self.buckets.len() / 2);
        }
        Some(ScheduledEvent {
            time: SimTime::new(entry.time),
            id: entry.id(),
            payload,
        })
    }

    /// Time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let bi = self.next_position()?;
        self.buckets[bi].first().map(|e| SimTime::new(e.time))
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events ever popped (excluding cancelled ones).
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }

    /// Lifetime traffic counters, including bucket-array resizes.
    pub fn stats(&self) -> FelStats {
        FelStats {
            scheduled: self.scheduled_total,
            popped: self.popped_total,
            cancelled: self.cancelled_total,
            high_water: self.high_water,
            resizes: self.resizes,
        }
    }

    /// Rebuilds the calendar with `nbuckets` buckets and a re-estimated
    /// width, dropping cancelled keys in the process.
    fn resize(&mut self, nbuckets: usize) {
        self.resizes += 1;
        let width = self.estimate_width();
        let mut old = std::mem::take(&mut self.buckets);
        self.buckets.resize_with(nbuckets, Vec::new);
        self.width = width;
        let mut min_t = self.last_time;
        for bucket in &mut old {
            for entry in bucket.drain(..) {
                if self.slab.is_live(entry.id()) {
                    min_t = min_t.min(entry.time);
                    self.insert(entry);
                } else {
                    self.stored -= 1;
                }
            }
        }
        self.cur_day = self.day_of(min_t);
    }

    /// Brown's width heuristic, robustified: sample live events and use
    /// a multiple of the *median* adjacent gap.
    ///
    /// The textbook estimator (mean separation = sampled span / count)
    /// is fragile: one far-future timer in the sample — and the cluster
    /// model always carries a handful of long-horizon timers among its
    /// dense completion events — inflates the mean by orders of
    /// magnitude, producing days so wide that the whole event population
    /// lands in a few buckets and every pop degenerates into a sorted-
    /// bucket insertion scan. The median of adjacent gaps ignores such
    /// outliers entirely, so the width tracks the *typical* event
    /// density.
    fn estimate_width(&self) -> f64 {
        let mut sample: Vec<f64> = Vec::with_capacity(64);
        'outer: for bucket in &self.buckets {
            for e in bucket {
                if !self.slab.is_live(e.id()) {
                    continue;
                }
                sample.push(e.time);
                if sample.len() >= 64 {
                    break 'outer;
                }
            }
        }
        if sample.len() < 2 {
            return self.width.max(1e-12);
        }
        sample.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let mut gaps: Vec<f64> = sample.windows(2).map(|w| w[1] - w[0]).collect();
        let mid = gaps.len() / 2;
        let (_, median, _) =
            gaps.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("finite gaps"));
        let median = *median;
        if median > 0.0 {
            return (3.0 * median).max(1e-12);
        }
        // Over half the sampled gaps are exact ties (batched timers);
        // fall back to the mean separation across the sample.
        let span = sample.last().expect("non-empty") - sample[0];
        let avg_gap = span / (sample.len() - 1) as f64;
        if avg_gap <= 0.0 {
            self.width.max(1e-12)
        } else {
            3.0 * avg_gap
        }
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> FutureEventList<E> for CalendarQueue<E> {
    #[inline]
    fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        CalendarQueue::schedule(self, time, payload)
    }

    #[inline]
    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        CalendarQueue::pop(self)
    }

    #[inline]
    fn peek_time(&mut self) -> Option<SimTime> {
        CalendarQueue::peek_time(self)
    }

    #[inline]
    fn cancel(&mut self, id: EventId) -> bool {
        CalendarQueue::cancel(self, id)
    }

    #[inline]
    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }

    #[inline]
    fn scheduled_total(&self) -> u64 {
        CalendarQueue::scheduled_total(self)
    }

    #[inline]
    fn popped_total(&self) -> u64 {
        CalendarQueue::popped_total(self)
    }

    #[inline]
    fn stats(&self) -> FelStats {
        CalendarQueue::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use crate::rng::Rng64;

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = CalendarQueue::new();
        for i in 0..50 {
            q.schedule(t(7.0), i);
        }
        for i in 0..50 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn width_estimate_ignores_far_future_outliers() {
        // A dense cluster of events 1 s apart plus one timer far in the
        // future — the mix the cluster model produces (completion events
        // plus long-horizon fault/deviation timers). The mean-gap
        // estimator would smear the outlier into a ~3e7-second width;
        // the median-of-gaps estimator must stay at the dense spacing.
        let mut q = CalendarQueue::new();
        for i in 0..63u32 {
            q.schedule(t(i as f64), i);
        }
        q.schedule(t(2.0e9), 999);
        let width = q.estimate_width();
        assert!(
            (2.0..=4.0).contains(&width),
            "width {width} should track the 1 s median gap, not the outlier"
        );
        // All-tied samples fall back without a zero width.
        let mut ties = CalendarQueue::new();
        for i in 0..16u32 {
            ties.schedule(t(5.0), i);
        }
        assert!(ties.estimate_width() > 0.0);
    }

    #[test]
    fn width_estimate_survives_ten_thousand_pending_timers() {
        // The 10,000-server fleet keeps one crash/repair renewal timer
        // per machine pending at all times, spread across the whole
        // horizon, *plus* a dense burst of near-term completion events.
        // The sampled-median estimator must keep a finite positive
        // width, the calendar must pop the whole population in time
        // order, and growth resizes must stay logarithmic in the
        // population (each resize doubles the bucket count).
        let mut q = CalendarQueue::new();
        let mut rng = Rng64::from_seed(42);
        let mut times = Vec::with_capacity(10_064);
        for i in 0..10_000u32 {
            let when = rng.next_f64() * 4.0e6;
            times.push(when);
            q.schedule(t(when), i);
        }
        for i in 0..64u32 {
            let when = i as f64 * 0.25;
            times.push(when);
            q.schedule(t(when), 20_000 + i);
        }
        let width = q.estimate_width();
        assert!(
            width.is_finite() && width > 0.0,
            "degenerate width {width} with 10k timers pending"
        );
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &expect in &times {
            let got = q.pop().expect("population drains in order");
            assert_eq!(got.time, t(expect));
        }
        assert!(q.pop().is_none());
        let resizes = q.stats().resizes;
        assert!(
            resizes < 64,
            "{resizes} resizes for a 10k population — width estimator drift"
        );
    }

    #[test]
    fn sparse_events_trigger_year_jump() {
        let mut q = CalendarQueue::new();
        q.schedule(t(0.5), "near");
        q.schedule(t(1.0e6), "far");
        assert_eq!(q.pop().unwrap().payload, "near");
        // The far event lies many years ahead of the cursor.
        assert_eq!(q.pop().unwrap().payload, "far");
    }

    #[test]
    fn growth_and_shrink_preserve_content() {
        let mut q = CalendarQueue::new();
        for i in 0..1000u32 {
            q.schedule(t(i as f64 * 0.1), i);
        }
        assert_eq!(q.len(), 1000);
        for i in 0..1000u32 {
            let ev = q.pop().expect("present");
            assert_eq!(ev.payload, i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_hold_pattern() {
        // Pop one, push one — the DES steady state.
        let mut q = CalendarQueue::new();
        let mut rng = Rng64::from_seed(3);
        for i in 0..64u32 {
            q.schedule(t(rng.next_f64() * 10.0), i);
        }
        let mut last = 0.0;
        for _ in 0..10_000 {
            let ev = q.pop().expect("non-empty");
            assert!(ev.time.as_secs() >= last);
            last = ev.time.as_secs();
            q.schedule(ev.time.after(rng.next_f64() * 10.0), ev.payload);
        }
    }

    #[test]
    fn cancel_skips_event_and_peek_sees_next_live() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.peek_time(), Some(t(1.0)));
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_pop_is_false() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(t(1.0), ());
        assert_eq!(q.pop().unwrap().id, a);
        assert!(!q.cancel(a));
    }

    #[test]
    fn peek_then_schedule_earlier_pops_in_order() {
        // A peek's year-jump parks the cursor far ahead; a subsequent
        // schedule of a nearer event must still pop first.
        let mut q = CalendarQueue::new();
        q.schedule(t(1.0e6), "far");
        assert_eq!(q.peek_time(), Some(t(1.0e6)));
        q.schedule(t(5.0), "near");
        assert_eq!(q.peek_time(), Some(t(5.0)));
        assert_eq!(q.pop().unwrap().payload, "near");
        assert_eq!(q.pop().unwrap().payload, "far");
    }

    #[test]
    fn resize_purges_cancelled_entries() {
        let mut q = CalendarQueue::new();
        let ids: Vec<_> = (0..100u32).map(|i| q.schedule(t(i as f64), i)).collect();
        for id in ids.iter().step_by(2) {
            assert!(q.cancel(*id));
        }
        assert_eq!(q.len(), 50);
        // Grow and shrink cycles drop stale keys; everything live pops.
        let mut seen = Vec::new();
        while let Some(ev) = q.pop() {
            seen.push(ev.payload);
        }
        assert_eq!(seen, (0..100u32).filter(|i| i % 2 == 1).collect::<Vec<_>>());
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(t(1.0), ());
        q.schedule(t(2.0), ());
        q.cancel(a);
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.popped_total(), 1);
    }

    #[test]
    fn stats_count_resizes_under_growth() {
        let mut q = CalendarQueue::new();
        for i in 0..1000u32 {
            q.schedule(t(i as f64 * 0.1), i);
        }
        let grown = q.stats();
        assert!(grown.resizes > 0, "1000 events must outgrow 2 buckets");
        assert_eq!(grown.high_water, 1000);
        while q.pop().is_some() {}
        let drained = q.stats();
        assert!(drained.resizes > grown.resizes, "draining shrinks buckets");
        assert_eq!(drained.popped, 1000);
        assert_eq!(drained.cancelled, 0);
    }

    #[test]
    fn stats_count_cancellations_once() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(t(1.0), ());
        q.cancel(a);
        q.cancel(a);
        assert_eq!(q.stats().cancelled, 1);
    }

    #[test]
    fn differential_against_binary_heap() {
        // Same random schedule through both structures must produce the
        // same (time, payload) sequence — including FIFO tie-breaks.
        let mut rng = Rng64::from_seed(9);
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        // Mixed workload: bursts of ties, uniform spread, long gaps.
        for i in 0..5_000u32 {
            let time = match i % 3 {
                0 => (rng.next_f64() * 100.0).floor(), // heavy ties
                1 => rng.next_f64() * 1000.0,
                _ => rng.next_f64() * 10.0 + 5_000.0,
            };
            cal.schedule(t(time), i);
            heap.schedule(t(time), i);
        }
        loop {
            match (cal.pop(), heap.pop()) {
                (None, None) => break,
                (Some(c), Some(h)) => {
                    assert_eq!(c.time, h.time, "times diverge");
                    assert_eq!(c.payload, h.payload, "payloads diverge at {}", c.time);
                }
                (a, b) => panic!("length mismatch: {:?} vs {:?}", a.is_some(), b.is_some()),
            }
        }
    }

    #[test]
    fn zero_time_events() {
        let mut q = CalendarQueue::new();
        q.schedule(t(0.0), "z");
        assert_eq!(q.pop().unwrap().payload, "z");
    }
}

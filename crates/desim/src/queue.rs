//! Binary-heap future-event list (the default backend).
//!
//! [`EventQueue`] stores `(time, payload)` pairs and pops them in
//! non-decreasing time order. Two events with identical timestamps pop in
//! the order they were scheduled (FIFO), which keeps runs bit-for-bit
//! deterministic — a prerequisite for the paper's "10 independent runs"
//! methodology, where the *only* source of variation between replications
//! must be the random seed.
//!
//! ## Hot-path layout
//!
//! The heap array holds only 24-byte `Copy` keys: the timestamp packed as
//! an order-preserving `u64` (see [`SimTime::key_bits`]), a FIFO sequence
//! number, and a `(slot, generation)` reference into a
//! [`PayloadSlab`](crate::slab). Sift operations therefore compare raw
//! integers and never move payloads, and a pop decides whether the
//! surfacing key is still live with a single generation comparison — the
//! no-cancel fast path does no hashing at all.
//!
//! ## Cancellation
//!
//! Two idioms are supported:
//!
//! 1. **Generation-stamped deletion** — [`EventQueue::cancel`] bumps the
//!    slot's generation (O(1), no heap restructuring); the stale heap key
//!    is discarded when it surfaces.
//! 2. **Epoch filtering** (recommended for high-churn timers such as
//!    processor-sharing completion estimates) — the *model* stamps each
//!    timer with an epoch counter and ignores stale firings. This avoids
//!    touching the queue entirely; the cluster crate uses it for server
//!    completion events, which are invalidated by every arrival.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::fel::{FelStats, FutureEventList, ScheduledEvent};
use crate::slab::{EventId, PayloadSlab};
use crate::time::SimTime;

/// A heap key: packed timestamp, FIFO sequence number, and slab reference.
#[derive(Clone, Copy)]
struct Entry {
    time_bits: u64,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl Entry {
    #[inline]
    fn id(self) -> EventId {
        EventId::new(self.slot, self.gen)
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time_bits == other.time_bits && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (then the
        // lowest sequence number) is the greatest element.
        (other.time_bits, other.seq).cmp(&(self.time_bits, self.seq))
    }
}

/// A future-event list: a binary heap ordered by `(time, insertion order)`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry>,
    slab: PayloadSlab<E>,
    next_seq: u64,
    scheduled_total: u64,
    popped_total: u64,
    cancelled_total: u64,
    high_water: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slab: PayloadSlab::new(),
            next_seq: 0,
            scheduled_total: 0,
            popped_total: 0,
            cancelled_total: 0,
            high_water: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            slab: PayloadSlab::with_capacity(cap),
            ..Self::new()
        }
    }

    /// Schedules `payload` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let id = self.slab.insert(payload);
        self.heap.push(Entry {
            time_bits: time.key_bits(),
            seq: self.next_seq,
            slot: id.slot(),
            gen: id.gen(),
        });
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.high_water = self.high_water.max(self.slab.live() as u64);
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` iff the id named a still-pending event. The slot's
    /// generation is bumped immediately (so the event can never fire); the
    /// stale heap key is purged lazily when it surfaces.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let live = self.slab.take(id).is_some();
        self.cancelled_total += live as u64;
        live
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(entry) = self.heap.pop() {
            if let Some(payload) = self.slab.take(entry.id()) {
                self.popped_total += 1;
                return Some(ScheduledEvent {
                    time: SimTime::from_key_bits(entry.time_bits),
                    id: entry.id(),
                    payload,
                });
            }
            // Stale key from a cancelled event; keep draining.
        }
        None
    }

    /// Time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(head) = self.heap.peek() {
            if self.slab.is_live(head.id()) {
                return Some(SimTime::from_key_bits(head.time_bits));
            }
            self.heap.pop();
        }
        None
    }

    /// Number of pending (live) events.
    pub fn len(&self) -> usize {
        self.slab.live()
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events ever popped (excluding cancelled ones).
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }

    /// Lifetime traffic counters (`resizes` is always zero for a heap).
    pub fn stats(&self) -> FelStats {
        FelStats {
            scheduled: self.scheduled_total,
            popped: self.popped_total,
            cancelled: self.cancelled_total,
            high_water: self.high_water,
            resizes: 0,
        }
    }
}

impl<E> FutureEventList<E> for EventQueue<E> {
    #[inline]
    fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        EventQueue::schedule(self, time, payload)
    }

    #[inline]
    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        EventQueue::pop(self)
    }

    #[inline]
    fn peek_time(&mut self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }

    #[inline]
    fn cancel(&mut self, id: EventId) -> bool {
        EventQueue::cancel(self, id)
    }

    #[inline]
    fn len(&self) -> usize {
        EventQueue::len(self)
    }

    #[inline]
    fn scheduled_total(&self) -> u64 {
        EventQueue::scheduled_total(self)
    }

    #[inline]
    fn popped_total(&self) -> u64 {
        EventQueue::popped_total(self)
    }

    #[inline]
    fn stats(&self) -> FelStats {
        EventQueue::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn interleaved_times_and_ties() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), "a1");
        q.schedule(t(2.0), "b1");
        q.schedule(t(1.0), "a2");
        q.schedule(t(2.0), "b2");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a1", "a2", "b1", "b2"]);
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_pop_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        assert_eq!(q.pop().unwrap().id, a);
        assert!(!q.cancel(a), "ids die when their event is delivered");
    }

    #[test]
    fn double_cancel_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn stale_id_stays_dead_after_slot_reuse() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        assert!(q.cancel(a));
        let b = q.schedule(t(2.0), "b");
        assert!(!q.cancel(a), "recycled slot must not honour the old id");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(!q.cancel(b));
    }

    #[test]
    fn peek_time_sees_earliest_live() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.peek_time(), Some(t(1.0)));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2.0)));
    }

    #[test]
    fn len_and_is_empty_account_for_cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        q.schedule(t(2.0), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.cancel(a);
        assert_eq!(q.len(), 1, "len counts live events only");
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        q.schedule(t(2.0), ());
        q.cancel(a);
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.popped_total(), 1);
    }

    #[test]
    fn stats_report_cancellations_and_high_water() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        q.schedule(t(2.0), ());
        q.schedule(t(3.0), ());
        q.cancel(a);
        q.cancel(a); // dead id: must not count
        q.pop();
        let s = q.stats();
        assert_eq!(s.scheduled, 3);
        assert_eq!(s.popped, 1);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.high_water, 3, "peak live population was 3");
        assert_eq!(s.resizes, 0, "heap backend never resizes buckets");
    }

    #[test]
    fn trait_default_stats_matches_override_on_basic_counters() {
        // The trait-level default (used by backends without extra
        // bookkeeping) must agree with the override on the two counters
        // every backend tracks.
        let mut q = EventQueue::new();
        q.schedule(t(1.0), ());
        q.pop();
        let s = FutureEventList::<()>::stats(&q);
        assert_eq!(s.scheduled, q.scheduled_total());
        assert_eq!(s.popped, q.popped_total());
    }

    #[test]
    fn large_random_order_is_sorted() {
        use crate::rng::Rng64;
        let mut rng = Rng64::from_seed(11);
        let mut q = EventQueue::new();
        for i in 0..10_000u32 {
            q.schedule(t(rng.next_f64() * 1e6), i);
        }
        let mut last = 0.0;
        while let Some(ev) = q.pop() {
            assert!(ev.time.as_secs() >= last);
            last = ev.time.as_secs();
        }
    }

    #[test]
    fn stress_with_random_cancellation() {
        use crate::rng::Rng64;
        let mut rng = Rng64::from_seed(12);
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..5_000u32 {
            let id = q.schedule(t(rng.next_f64() * 100.0), i);
            ids.push(id);
            if rng.chance(0.3) {
                let idx = rng.below(ids.len() as u64) as usize;
                q.cancel(ids[idx]);
            }
        }
        let live = q.len();
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, live);
    }
}

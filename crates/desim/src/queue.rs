//! Future-event list.
//!
//! [`EventQueue`] stores `(time, payload)` pairs and pops them in
//! non-decreasing time order. Two events with identical timestamps pop in
//! the order they were scheduled (FIFO), which keeps runs bit-for-bit
//! deterministic — a prerequisite for the paper's "10 independent runs"
//! methodology, where the *only* source of variation between replications
//! must be the random seed.
//!
//! ## Cancellation
//!
//! Two idioms are supported:
//!
//! 1. **Lazy deletion** — [`EventQueue::cancel`] marks an [`EventId`];
//!    the entry is discarded when it reaches the top of the heap. O(1) per
//!    cancellation, no heap restructuring.
//! 2. **Epoch filtering** (recommended for high-churn timers such as
//!    processor-sharing completion estimates) — the *model* stamps each
//!    timer with an epoch counter and ignores stale firings. This avoids
//!    touching the queue entirely; the cluster crate uses it for server
//!    completion events, which are invalidated by every arrival.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::SimTime;

/// Identifier of a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// An event popped from the queue.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// The identifier it was scheduled under.
    pub id: EventId,
    /// The user payload.
    pub payload: E,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (then the
        // lowest sequence number) is the greatest element.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list: a binary heap ordered by `(time, insertion order)`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
    scheduled_total: u64,
    popped_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            scheduled_total: 0,
            popped_total: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            ..Self::new()
        }
    }

    /// Schedules `payload` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_seq);
        self.heap.push(Entry {
            time,
            seq: self.next_seq,
            id,
            payload,
        });
        self.next_seq += 1;
        self.scheduled_total += 1;
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the id was live (scheduled and neither popped nor
    /// already cancelled). Cancellation is lazy: the entry stays in the
    /// heap until it surfaces, then is skipped.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false; // never scheduled
        }
        // We cannot cheaply know whether it was already popped; track only
        // pending ids in `cancelled` and let pop() clean up.
        self.cancelled.insert(id)
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue; // skip cancelled entries
            }
            self.popped_total += 1;
            return Some(ScheduledEvent {
                time: entry.time,
                id: entry.id,
                payload: entry.payload,
            });
        }
        None
    }

    /// Time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Purge cancelled heads so the answer reflects a live event.
        while let Some(head) = self.heap.peek() {
            if self.cancelled.contains(&head.id) {
                let popped = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&popped.id);
            } else {
                return Some(head.time);
            }
        }
        None
    }

    /// Number of entries currently in the heap (including not-yet-purged
    /// cancelled entries).
    // `is_empty` needs `&mut self` to purge cancelled heads, which clippy
    // flags against this `len`; the asymmetry is intentional.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no live events remain.
    ///
    /// Takes `&mut self` (unlike the convention clippy expects next to
    /// `len`) because answering correctly requires purging cancelled
    /// entries from the heap top; `len` deliberately counts those
    /// entries, as documented.
    #[allow(clippy::wrong_self_convention)]
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events ever popped (excluding cancelled ones).
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn interleaved_times_and_ties() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), "a1");
        q.schedule(t(2.0), "b1");
        q.schedule(t(1.0), "a2");
        q.schedule(t(2.0), "b2");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a1", "a2", "b1", "b2"]);
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn double_cancel_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn peek_time_sees_earliest_live() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.peek_time(), Some(t(1.0)));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2.0)));
    }

    #[test]
    fn is_empty_accounts_for_cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        assert!(!q.is_empty());
        q.cancel(a);
        assert!(q.is_empty());
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        q.schedule(t(2.0), ());
        q.cancel(a);
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.popped_total(), 1);
    }

    #[test]
    fn large_random_order_is_sorted() {
        use crate::rng::Rng64;
        let mut rng = Rng64::from_seed(11);
        let mut q = EventQueue::new();
        for i in 0..10_000u32 {
            q.schedule(t(rng.next_f64() * 1e6), i);
        }
        let mut last = 0.0;
        while let Some(ev) = q.pop() {
            assert!(ev.time.as_secs() >= last);
            last = ev.time.as_secs();
        }
    }

    #[test]
    fn stress_with_random_cancellation() {
        use crate::rng::Rng64;
        let mut rng = Rng64::from_seed(12);
        let mut q = EventQueue::new();
        let mut live = 0usize;
        let mut ids = Vec::new();
        for i in 0..5_000u32 {
            let id = q.schedule(t(rng.next_f64() * 100.0), i);
            ids.push(id);
            live += 1;
            if rng.chance(0.3) {
                let idx = rng.below(ids.len() as u64) as usize;
                if q.cancel(ids[idx]) {
                    live -= 1;
                }
            }
        }
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, live);
    }
}

//! The future-event-list contract shared by all kernel backends.
//!
//! A future-event list (FEL) is the heart of a discrete-event simulator:
//! it holds pending events and surrenders them in timestamp order. The
//! [`Engine`](crate::engine::Engine) is generic over this trait so the
//! backing structure can be swapped without touching model code — the
//! binary-heap [`EventQueue`](crate::queue::EventQueue) is the default,
//! and the [`CalendarQueue`](crate::calendar::CalendarQueue) (Brown,
//! CACM 1988) trades a little bookkeeping for O(1) amortized operation
//! on large event populations.
//!
//! Every implementation must uphold the same three guarantees, because
//! the reproduction's figures are asserted bit-for-bit:
//!
//! 1. **Timestamp order.** `pop` returns events in non-decreasing time.
//! 2. **FIFO ties.** Events with *equal* timestamps pop in the order
//!    they were scheduled. This is what makes replications byte-stable:
//!    simultaneous completions, arrivals, and load-update ticks resolve
//!    identically on every run and every backend.
//! 3. **Exact cancellation.** `cancel(id)` returns `true` iff `id`
//!    named a still-pending event, which is then never delivered. Ids
//!    die when their event pops or is cancelled, so double-cancel and
//!    cancel-after-delivery are safe no-ops returning `false`.

use crate::slab::EventId;
use crate::time::SimTime;

/// An event handed back by a future-event list, with its timestamp and id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// The id under which it was scheduled.
    pub id: EventId,
    /// The model-defined payload.
    pub payload: E,
}

/// A snapshot of a future-event list's lifetime counters.
///
/// These are *observability* counters: they describe kernel traffic
/// (how many events were scheduled, delivered, cancelled) and pressure
/// (the largest live population, calendar resizes) without exposing any
/// pending payloads. Reading them never mutates the list, so models can
/// surface them in run reports without perturbing determinism.
///
/// The struct is deliberately serde-free: `hetsched-desim` has no
/// dependencies, and the reproduction keeps it that way. Crates that
/// need to serialize kernel counters mirror this type (see
/// `hetsched-obs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FelStats {
    /// Total events ever scheduled.
    pub scheduled: u64,
    /// Total events ever delivered by `pop`.
    pub popped: u64,
    /// Total events cancelled while still pending.
    pub cancelled: u64,
    /// Largest number of live (deliverable) events ever pending at once.
    pub high_water: u64,
    /// Bucket-array resizes (calendar backend only; zero elsewhere).
    pub resizes: u64,
}

/// A pending-event store ordered by `(time, scheduling order)`.
///
/// See the [module docs](self) for the determinism contract every
/// implementation must honour.
pub trait FutureEventList<E> {
    /// Schedules `payload` at absolute `time`; returns a cancellation id.
    fn schedule(&mut self, time: SimTime, payload: E) -> EventId;

    /// Removes and returns the earliest pending event (FIFO among ties).
    fn pop(&mut self) -> Option<ScheduledEvent<E>>;

    /// The timestamp of the earliest pending event, without removing it.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Cancels a pending event. Returns `true` iff the event was still
    /// pending (and is now guaranteed never to be delivered).
    fn cancel(&mut self, id: EventId) -> bool;

    /// Number of pending events.
    ///
    /// Backends purge cancelled storage lazily, but this count is exact:
    /// it reflects live (deliverable) events only.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled (monotone counter).
    fn scheduled_total(&self) -> u64;

    /// Total events ever delivered by `pop` (monotone counter).
    fn popped_total(&self) -> u64;

    /// Lifetime traffic counters for observability.
    ///
    /// The default implementation reports only the two counters every
    /// backend must already track; backends that know more (cancellation
    /// volume, high-water mark, resizes) override it. Implementations
    /// must not mutate any state observable through the other methods.
    fn stats(&self) -> FelStats {
        FelStats {
            scheduled: self.scheduled_total(),
            popped: self.popped_total(),
            ..FelStats::default()
        }
    }
}

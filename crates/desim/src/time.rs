//! Simulation time.
//!
//! [`SimTime`] wraps an `f64` number of simulated seconds. The wrapper
//! guarantees the value is finite and non-negative, which in turn makes the
//! total order required by the future-event list sound (no NaN can enter the
//! heap). Simulated seconds are the unit used throughout the paper: job
//! sizes are "completion time ... on an idle machine with relative speed 1"
//! in seconds, inter-arrival times are in seconds, and the horizon is
//! `4.0e6` seconds.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since the start of the run.
///
/// `SimTime` is `Copy`, totally ordered, and can only hold finite,
/// non-negative values; constructors panic (in debug *and* release builds)
/// on violations, because a corrupted clock silently invalidates every
/// statistic collected afterwards.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a timestamp from a number of seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN, infinite, or negative.
    #[inline]
    pub fn new(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        // `-0.0` passes the check above but its bit pattern would break the
        // packed integer keys used by the event-list backends; `+ 0.0`
        // normalizes it to `+0.0` (IEEE 754: -0.0 + 0.0 = +0.0) and is a
        // no-op for every other value.
        SimTime(secs + 0.0)
    }

    /// The timestamp as a raw number of seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The delay from `self` until `later`.
    ///
    /// # Panics
    /// Panics if `later` precedes `self`.
    #[inline]
    pub fn delta_to(self, later: SimTime) -> f64 {
        assert!(
            later.0 >= self.0,
            "delta_to requires later >= self ({} < {})",
            later.0,
            self.0
        );
        later.0 - self.0
    }

    /// Returns `self + delay` seconds.
    ///
    /// # Panics
    /// Panics if `delay` is NaN or negative (scheduling into the past is a
    /// model bug that the kernel refuses to mask).
    #[inline]
    pub fn after(self, delay: f64) -> SimTime {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "delay must be finite and non-negative, got {delay}"
        );
        SimTime(self.0 + delay)
    }

    /// The timestamp as an order-preserving `u64` key.
    ///
    /// For finite non-negative floats (guaranteed by construction, with
    /// `-0.0` normalized away) the IEEE 754 bit pattern is monotone in the
    /// value, so backends can sort raw integers instead of floats in their
    /// hot paths.
    #[inline]
    pub(crate) fn key_bits(self) -> u64 {
        self.0.to_bits()
    }

    /// Inverse of [`SimTime::key_bits`].
    #[inline]
    pub(crate) fn from_key_bits(bits: u64) -> SimTime {
        let secs = f64::from_bits(bits);
        debug_assert!(secs.is_finite() && secs >= 0.0);
        SimTime(secs)
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two timestamps.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are guaranteed finite by construction, so partial_cmp
        // cannot fail.
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is always finite")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: f64) -> SimTime {
        self.after(rhs)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: f64) {
        *self = self.after(rhs);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        rhs.delta_to(self)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({}s)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl From<SimTime> for f64 {
    #[inline]
    fn from(t: SimTime) -> f64 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    fn ordering_is_numeric() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn after_adds_delay() {
        let t = SimTime::new(5.0).after(2.5);
        assert_eq!(t.as_secs(), 7.5);
    }

    #[test]
    fn add_and_sub_operators() {
        let t = SimTime::new(1.0) + 2.0;
        assert_eq!(t.as_secs(), 3.0);
        assert_eq!(t - SimTime::new(1.0), 2.0);
        let mut u = SimTime::ZERO;
        u += 4.0;
        assert_eq!(u.as_secs(), 4.0);
    }

    #[test]
    fn delta_to_measures_gap() {
        let a = SimTime::new(10.0);
        let b = SimTime::new(12.5);
        assert_eq!(a.delta_to(b), 2.5);
        assert_eq!(a.delta_to(a), 0.0);
    }

    #[test]
    fn negative_zero_is_normalized() {
        let t = SimTime::new(-0.0);
        assert!(
            t.as_secs().is_sign_positive(),
            "-0.0 must normalize to +0.0"
        );
        assert_eq!(t.key_bits(), SimTime::ZERO.key_bits());
    }

    #[test]
    fn key_bits_are_order_preserving() {
        let times = [0.0, 1e-300, 0.5, 1.0, 1.0 + f64::EPSILON, 4.0e6];
        for w in times.windows(2) {
            let (a, b) = (SimTime::new(w[0]), SimTime::new(w[1]));
            assert!(a.key_bits() < b.key_bits(), "{a:?} vs {b:?}");
            assert_eq!(SimTime::from_key_bits(a.key_bits()), a);
        }
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_nan() {
        SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative() {
        SimTime::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_infinity() {
        SimTime::new(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "delay must be finite")]
    fn rejects_negative_delay() {
        SimTime::new(1.0).after(-0.5);
    }

    #[test]
    #[should_panic(expected = "later >= self")]
    fn rejects_backwards_delta() {
        SimTime::new(2.0).delta_to(SimTime::new(1.0));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::new(1.5)), "1.500000s");
        assert_eq!(format!("{:?}", SimTime::new(1.5)), "SimTime(1.5s)");
    }

    #[test]
    fn conversion_to_f64() {
        let x: f64 = SimTime::new(3.25).into();
        assert_eq!(x, 3.25);
    }
}

//! Deterministic pseudo-random number generation.
//!
//! The paper averages every data point over "10 independent runs with
//! different random number streams" (§4.1). To make those streams
//! independent *and* reproducible we implement xoshiro256++ (Blackman &
//! Vigna) seeded through SplitMix64, the construction recommended by the
//! xoshiro authors. Component streams (arrival process, job sizes, random
//! dispatching, network delays, ...) are derived from a root seed and a
//! stream index, so changing the root seed re-randomizes every component
//! coherently while two components never share a sequence.
//!
//! Nothing here is cryptographic; the requirements are statistical quality,
//! speed, and bit-for-bit reproducibility across platforms and crate
//! versions.

/// SplitMix64: a tiny 64-bit generator used to expand seeds.
///
/// Each call to [`SplitMix64::next_u64`] advances an internal counter by a
/// large odd constant and hashes it; the outputs for distinct counters are
/// well distributed, which makes it the standard seed expander for the
/// xoshiro family.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a seed expander from a root seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Produces the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ pseudo-random generator with convenience samplers.
///
/// Use [`Rng64::from_seed`] for a single generator or [`Rng64::stream`] to
/// derive independent component streams from a shared root seed.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator whose state is expanded from `seed` via
    /// SplitMix64.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = sm.next_u64();
        }
        // The all-zero state is a fixed point of xoshiro; SplitMix64 cannot
        // produce four consecutive zeros in practice, but guard anyway.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Rng64 { s }
    }

    /// Derives the `stream`-th independent generator for a root `seed`.
    ///
    /// The (seed, stream) pair is hashed through SplitMix64 so that streams
    /// with nearby indices are no more correlated than streams with distant
    /// ones.
    pub fn stream(seed: u64, stream: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let base = sm.next_u64();
        Rng64::from_seed(base ^ stream.wrapping_mul(0xD1342543DE82EF95))
    }

    /// Produces the next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scales them into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in the open interval `(0, 1)`.
    ///
    /// Useful for inverse-CDF sampling where `ln(0)` or division by zero
    /// must be impossible.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// This is the `U(x, y)` of the paper's dynamic-policy model (§4.2):
    /// after a departure a computer takes `U(0,1)` seconds to notice the
    /// load change.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Exponential draw with the given `rate` (mean `1/rate`).
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive.
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        -self.next_f64_open().ln() / rate
    }

    /// Uniform integer draw in `[0, n)` via Lemire's rejection method
    /// (unbiased).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift with rejection of the biased zone.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Standard normal draw (Box–Muller, polar form).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Bernoulli draw: returns `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First two outputs for s = {1, 2, 3, 4}, derived by hand from the
    /// xoshiro256++ update rule:
    ///   out1 = rotl(1 + 4, 23) + 1 = 5·2^23 + 1
    ///   out2 = rotl(7 + (6 << 45), 23) + 7 = 58720359
    #[test]
    fn xoshiro_hand_computed_outputs() {
        let mut rng = Rng64 { s: [1, 2, 3, 4] };
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
    }

    #[test]
    fn splitmix_reference_vector() {
        // From the SplitMix64 reference implementation with seed
        // 0x0ddc0ffeebadf00d (well-known test vector).
        let mut sm = SplitMix64::new(0x0ddc0ffeebadf00d);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: re-seeding reproduces the sequence.
        let mut sm2 = SplitMix64::new(0x0ddc0ffeebadf00d);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Rng64::from_seed(42);
        let mut b = Rng64::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::from_seed(1);
        let mut b = Rng64::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "seeds 1 and 2 produced {same} collisions");
    }

    #[test]
    fn streams_are_distinct_and_deterministic() {
        let mut s0 = Rng64::stream(7, 0);
        let mut s1 = Rng64::stream(7, 1);
        let mut s0b = Rng64::stream(7, 0);
        let mut collisions = 0;
        for _ in 0..64 {
            let a = s0.next_u64();
            assert_eq!(a, s0b.next_u64());
            if a == s1.next_u64() {
                collisions += 1;
            }
        }
        assert!(collisions < 2);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = Rng64::from_seed(3);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn open_unit_interval_excludes_zero() {
        let mut rng = Rng64::from_seed(4);
        for _ in 0..10_000 {
            let u = rng.next_f64_open();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng64::from_seed(5);
        for _ in 0..10_000 {
            let u = rng.uniform(2.0, 3.5);
            assert!((2.0..3.5).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_midpoint() {
        let mut rng = Rng64::from_seed(6);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.uniform(0.0, 1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Rng64::from_seed(7);
        let rate = 0.25;
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "exp mean {mean}, expected 4.0");
    }

    #[test]
    fn below_is_unbiased_over_small_range() {
        let mut rng = Rng64::from_seed(8);
        let mut counts = [0u32; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.below(5) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = c as f64 / n as f64;
            assert!((p - 0.2).abs() < 0.01, "bucket {i}: {p}");
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng64::from_seed(9);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let z = rng.standard_normal();
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "normal var {var}");
    }

    #[test]
    fn chance_frequency() {
        let mut rng = Rng64::from_seed(10);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.chance(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "chance(0.3) hit rate {p}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        Rng64::from_seed(0).exponential(0.0);
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_rejects_zero() {
        Rng64::from_seed(0).below(0);
    }
}

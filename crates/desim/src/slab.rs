//! Generation-stamped payload slots shared by the event-list backends.
//!
//! Both [`crate::queue::EventQueue`] and [`crate::calendar::CalendarQueue`]
//! park event payloads in a [`PayloadSlab`] and keep only a small `Copy`
//! key (time, sequence number, slot reference) in their ordering
//! structure. That buys two things:
//!
//! * the ordering hot path (heap sifts, bucket inserts) moves 24-byte
//!   keys instead of full entries carrying the payload;
//! * cancellation is O(1) and *free for the no-cancel fast path*: an
//!   [`EventId`] is a `(slot, generation)` pair, cancelling bumps the
//!   slot's generation, and a pop only has to compare two integers to
//!   decide whether the surfacing key is still live — no hash probe.
//!
//! Generations are 32-bit and wrap: an `EventId` is only guaranteed
//! unambiguous for the first 2³² schedule/cancel cycles of its slot.
//! Holding an id across four billion reuses of the same slot is far
//! outside any simulation's cancellation window (the cluster model holds
//! ids for at most one event's lifetime, and mostly cancels via epochs).

/// Identifier of a scheduled event, used for cancellation.
///
/// A slot index plus the slot's generation at scheduling time. The id is
/// dead as soon as the event pops or is cancelled (the generation moves
/// on), so cancelling a completed event is a cheap, safe no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

impl EventId {
    #[inline]
    pub(crate) fn new(slot: u32, gen: u32) -> Self {
        EventId { slot, gen }
    }

    #[inline]
    pub(crate) fn slot(self) -> u32 {
        self.slot
    }

    #[inline]
    pub(crate) fn gen(self) -> u32 {
        self.gen
    }
}

struct Slot<E> {
    gen: u32,
    payload: Option<E>,
}

/// Reusable payload slots with per-slot generation counters.
pub(crate) struct PayloadSlab<E> {
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    live: usize,
}

impl<E> PayloadSlab<E> {
    pub(crate) fn new() -> Self {
        PayloadSlab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    pub(crate) fn with_capacity(cap: usize) -> Self {
        PayloadSlab {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Parks `payload` in a free slot and returns its id.
    pub(crate) fn insert(&mut self, payload: E) -> EventId {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.payload.is_none(), "free list pointed at a live slot");
            s.payload = Some(payload);
            EventId::new(slot, s.gen)
        } else {
            let slot = u32::try_from(self.slots.len()).expect("more than 2^32 pending events");
            self.slots.push(Slot {
                gen: 0,
                payload: Some(payload),
            });
            EventId::new(slot, 0)
        }
    }

    /// Whether `id` still names a pending event.
    #[inline]
    pub(crate) fn is_live(&self, id: EventId) -> bool {
        // The generation only matches while the event is pending: `take`
        // bumps it on pop and on cancel.
        self.slots
            .get(id.slot() as usize)
            .is_some_and(|s| s.gen == id.gen())
    }

    /// Removes and returns the payload if `id` is live; bumps the slot's
    /// generation (killing the id) and recycles the slot.
    pub(crate) fn take(&mut self, id: EventId) -> Option<E> {
        let s = self.slots.get_mut(id.slot() as usize)?;
        if s.gen != id.gen() {
            return None;
        }
        let payload = s.payload.take();
        debug_assert!(payload.is_some(), "generation matched an empty slot");
        s.gen = s.gen.wrapping_add(1);
        self.free.push(id.slot());
        self.live -= 1;
        payload
    }

    /// Number of live (pending) payloads.
    #[inline]
    pub(crate) fn live(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrip() {
        let mut slab = PayloadSlab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.live(), 2);
        assert!(slab.is_live(a) && slab.is_live(b));
        assert_eq!(slab.take(a), Some("a"));
        assert!(!slab.is_live(a));
        assert_eq!(slab.take(a), None, "id dies with the take");
        assert_eq!(slab.take(b), Some("b"));
        assert_eq!(slab.live(), 0);
    }

    #[test]
    fn slots_are_recycled_with_fresh_generations() {
        let mut slab = PayloadSlab::new();
        let a = slab.insert(1u32);
        slab.take(a);
        let b = slab.insert(2u32);
        assert_eq!(b.slot(), a.slot(), "slot recycled");
        assert_ne!(b.gen(), a.gen(), "generation moved on");
        assert!(!slab.is_live(a), "stale id stays dead after reuse");
        assert_eq!(slab.take(b), Some(2));
    }

    #[test]
    fn out_of_range_ids_are_dead() {
        let slab: PayloadSlab<u8> = PayloadSlab::new();
        assert!(!slab.is_live(EventId::new(7, 0)));
    }
}

//! # hetsched-desim — discrete-event simulation kernel
//!
//! A small, deterministic discrete-event simulation (DES) kernel used as the
//! substrate for the cluster simulator of the ICPP 2000 reproduction
//! ("Optimizing Static Job Scheduling in a Network of Heterogeneous
//! Computers", Tang & Chanson).
//!
//! The kernel provides:
//!
//! * [`SimTime`] — a validated, totally ordered simulation timestamp.
//! * [`FutureEventList`] — the pending-event contract (timestamp order,
//!   FIFO ties, O(1) generation-stamped cancellation by [`EventId`]) with
//!   two interchangeable backends: the binary-heap [`EventQueue`]
//!   (default; O(log n) with tiny constants) and the [`CalendarQueue`]
//!   (Brown, CACM 1988; O(1) amortized for large event populations).
//!   The cheaper *epoch* cancellation idiom is documented in [`queue`].
//! * [`Engine`] / [`Actor`] — a run loop, generic over the backend, that
//!   drains the event list, advancing the clock monotonically and handing
//!   each event to user code together with a [`Scheduler`] facade for
//!   scheduling follow-up events.
//! * [`rng`] — a deterministic xoshiro256++ PRNG with SplitMix64 stream
//!   derivation so that every model component (arrivals, job sizes, network
//!   delays, random dispatching) draws from an *independent* reproducible
//!   stream, and replications differ only by the root seed.
//!
//! The kernel is deliberately free of external dependencies: reproducibility
//! of the paper's experiments must not hinge on the sampling internals of a
//! third-party RNG crate.
//!
//! ## Example
//!
//! ```
//! use hetsched_desim::{Engine, Actor, Scheduler, SimTime};
//!
//! #[derive(Debug, Clone, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! struct Counter { seen: u32 }
//!
//! impl Actor<Ev> for Counter {
//!     fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
//!         let Ev::Ping(k) = ev;
//!         self.seen += 1;
//!         if k > 0 {
//!             sched.schedule_in(1.0, Ev::Ping(k - 1));
//!         }
//!         let _ = now;
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! engine.schedule_at(SimTime::ZERO, Ev::Ping(3));
//! let mut actor = Counter { seen: 0 };
//! engine.run(&mut actor);
//! assert_eq!(actor.seen, 4);
//! assert_eq!(engine.now().as_secs(), 3.0);
//! ```

#![warn(missing_docs)]

pub mod calendar;
pub mod engine;
pub mod fel;
pub mod queue;
pub mod rng;
mod slab;
pub mod time;

pub use calendar::CalendarQueue;
pub use engine::{Actor, CalendarEngine, Engine, HeapEngine, RunOutcome, Scheduler};
pub use fel::{FelStats, FutureEventList, ScheduledEvent};
pub use queue::EventQueue;
pub use rng::{Rng64, SplitMix64};
pub use slab::EventId;
pub use time::SimTime;

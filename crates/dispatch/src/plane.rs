//! Cross-thread sync exchange for the conservative-parallel engine.
//!
//! When the parallel driver runs one simulation shard per thread, the
//! epoch barrier needs a rendezvous: every shard publishes its mergeable
//! policy snapshot, exactly one thread computes the consensus, and every
//! thread reads the same merged state back. [`SyncExchange`] packages
//! that protocol so the result is *deterministic regardless of thread
//! interleaving*: snapshots are stored in per-shard slots and folded in
//! shard-index order, which is exactly the order the sequential driver
//! uses — so a one-thread run and an N-thread run produce bit-identical
//! consensus states.

use std::sync::{Barrier, Mutex};

use crate::sync::{consensus, consensus_coordinated, SyncState};

/// A reusable epoch-barrier rendezvous for shard state synchronisation.
///
/// Built once per run with the shard count and the number of worker
/// threads; used once per sync epoch. The protocol per epoch:
///
/// 1. every thread calls [`SyncExchange::publish`] for each shard it
///    owns (threads own disjoint shard sets covering all shards);
/// 2. every thread calls [`SyncExchange::exchange`] exactly once. The
///    barrier's leader drains the slots *in shard order* and computes
///    the elementwise-mean consensus; after a second barrier all
///    threads receive the same merged state.
pub struct SyncExchange {
    /// One snapshot slot per shard; drained by the leader each epoch.
    slots: Vec<Mutex<Option<SyncState>>>,
    /// The consensus computed by the leader, read by everyone.
    merged: Mutex<Option<SyncState>>,
    /// Two-phase rendezvous over the worker threads.
    barrier: Barrier,
    /// Whether the leader folds with the phase-preserving combinator
    /// ([`consensus_coordinated`]) instead of the elementwise mean.
    coordinated: bool,
}

impl SyncExchange {
    /// Creates an exchange for `shards` slots rendezvousing `threads`
    /// worker threads, folding with the naive elementwise mean.
    pub fn new(shards: usize, threads: usize) -> Self {
        SyncExchange {
            slots: (0..shards).map(|_| Mutex::new(None)).collect(),
            merged: Mutex::new(None),
            barrier: Barrier::new(threads),
            coordinated: false,
        }
    }

    /// Switches the leader's fold to the phase-preserving combinator.
    /// Both folds walk the slots in shard-index order, so either mode
    /// is bit-identical across thread counts and interleavings.
    #[must_use]
    pub fn coordinated(mut self) -> Self {
        self.coordinated = true;
        self
    }

    /// Stores `state` as shard `shard`'s snapshot for this epoch.
    ///
    /// `None` means the shard's policy has no mergeable state; the
    /// consensus simply skips it (same as the sequential driver).
    pub fn publish(&self, shard: usize, state: Option<SyncState>) {
        *self.slots[shard].lock().expect("sync slot poisoned") = state;
    }

    /// Runs the two-phase exchange and returns the epoch's consensus.
    ///
    /// Must be called exactly once per epoch by every thread the
    /// exchange was built for, after all of the thread's shards have
    /// published. Returns `None` when no shard published mergeable
    /// state.
    pub fn exchange(&self) -> Option<SyncState> {
        let turn = self.barrier.wait();
        if turn.is_leader() {
            let states: Vec<SyncState> = self
                .slots
                .iter()
                .filter_map(|slot| slot.lock().expect("sync slot poisoned").take())
                .collect();
            *self.merged.lock().expect("merged slot poisoned") = if self.coordinated {
                consensus_coordinated(&states)
            } else {
                consensus(&states)
            };
        }
        self.barrier.wait();
        self.merged.lock().expect("merged slot poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn state(credits: Vec<f64>, loads: Vec<f64>) -> SyncState {
        SyncState {
            credits,
            loads,
            ..SyncState::default()
        }
    }

    #[test]
    fn single_thread_exchange_matches_direct_consensus() {
        let ex = SyncExchange::new(2, 1);
        ex.publish(0, Some(state(vec![1.0, 3.0], vec![2.0, 4.0])));
        ex.publish(1, Some(state(vec![3.0, 5.0], vec![6.0, 8.0])));
        let merged = ex.exchange().unwrap();
        let direct = consensus(&[
            state(vec![1.0, 3.0], vec![2.0, 4.0]),
            state(vec![3.0, 5.0], vec![6.0, 8.0]),
        ])
        .unwrap();
        assert_eq!(merged, direct);
    }

    #[test]
    fn empty_publishes_yield_none() {
        let ex = SyncExchange::new(3, 1);
        ex.publish(0, None);
        ex.publish(1, None);
        ex.publish(2, None);
        assert!(ex.exchange().is_none());
    }

    #[test]
    fn slots_are_drained_between_epochs() {
        let ex = SyncExchange::new(2, 1);
        ex.publish(0, Some(state(vec![2.0], vec![2.0])));
        ex.publish(1, Some(state(vec![4.0], vec![4.0])));
        assert_eq!(ex.exchange().unwrap().credits, vec![3.0]);
        // Next epoch: only shard 0 publishes; shard 1's stale snapshot
        // must not leak in.
        ex.publish(0, Some(state(vec![10.0], vec![10.0])));
        assert_eq!(ex.exchange().unwrap().credits, vec![10.0]);
    }

    #[test]
    fn coordinated_exchange_uses_phase_preserving_fold() {
        let ex = SyncExchange::new(2, 1).coordinated();
        let mut a = state(vec![1.0, 3.0], Vec::new());
        a.rate = 0.25;
        let mut b = state(vec![3.0, 5.0], Vec::new());
        b.rate = 0.5;
        ex.publish(0, Some(a.clone()));
        ex.publish(1, Some(b.clone()));
        let merged = ex.exchange().unwrap();
        assert_eq!(merged, consensus_coordinated(&[a, b]).unwrap());
        assert!(merged.phase_preserving);
        assert_eq!(merged.rate, 0.75);
    }

    #[test]
    fn multi_thread_exchange_is_shard_ordered() {
        // Two threads, four shards (round-robin ownership); the merged
        // state must equal the shard-order fold no matter which thread
        // wins the leader election.
        let ex = Arc::new(SyncExchange::new(4, 2));
        let mut handles = Vec::new();
        for t in 0..2usize {
            let ex = Arc::clone(&ex);
            handles.push(std::thread::spawn(move || {
                for shard in (0..4).filter(|s| s % 2 == t) {
                    let v = shard as f64;
                    ex.publish(shard, Some(state(vec![v], vec![v * 10.0])));
                }
                ex.exchange().unwrap()
            }));
        }
        let results: Vec<SyncState> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0].credits, vec![1.5]);
        assert_eq!(results[0].loads, vec![15.0]);
    }
}

//! The `dispatch:` configuration section.

use hetsched_error::HetschedError;
use serde::{Deserialize, Serialize};

/// How the global arrival stream is partitioned across dispatchers.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum SplitterSpec {
    /// Deterministic cycling over the dispatchers — the tightest
    /// splitter: each shard sees exactly every `D`-th arrival.
    #[default]
    RoundRobin,
    /// Each arrival picks a dispatcher independently and uniformly at
    /// random (the classic iid-thinning model; each shard's stream is a
    /// random thinning of the global one).
    IidRandom,
    /// Each arrival carries a stream key drawn from `sources` logical
    /// job sources; the key hashes to a dispatcher, so one source's jobs
    /// always land on the same shard (sticky routing, the model behind
    /// consistent-hash front-ends).
    SourceHash {
        /// Number of logical job sources generating the stream.
        sources: u64,
    },
}

impl SplitterSpec {
    /// Stable lowercase name for reports and bench labels.
    pub fn label(&self) -> &'static str {
        match self {
            SplitterSpec::RoundRobin => "round_robin",
            SplitterSpec::IidRandom => "iid_random",
            SplitterSpec::SourceHash { .. } => "source_hash",
        }
    }
}

/// The periodic state-sync plane between dispatcher shards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncSpec {
    /// Simulated seconds between sync rounds. Each round snapshots every
    /// shard's mergeable state and ships the consensus back.
    pub interval: f64,
    /// One-way latency (seconds) between snapshot and apply. `0` models
    /// an instantaneous merge (a logically centralized credit table).
    #[serde(default)]
    pub latency: f64,
}

impl SyncSpec {
    /// A sync plane with the given round interval and zero latency.
    pub fn every(interval: f64) -> Self {
        SyncSpec {
            interval,
            latency: 0.0,
        }
    }

    /// Same spec with the given one-way latency.
    #[must_use]
    pub fn with_latency(mut self, latency: f64) -> Self {
        self.latency = latency;
        self
    }

    /// Validates the spec.
    ///
    /// # Errors
    /// [`HetschedError::InvalidConfig`] when a field is out of range.
    pub fn validate(&self) -> Result<(), HetschedError> {
        if !(self.interval.is_finite() && self.interval > 0.0) {
            return Err(HetschedError::InvalidConfig(format!(
                "sync interval must be positive, got {}",
                self.interval
            )));
        }
        if !(self.latency.is_finite() && self.latency >= 0.0) {
            return Err(HetschedError::InvalidConfig(format!(
                "sync latency must be non-negative, got {}",
                self.latency
            )));
        }
        Ok(())
    }
}

/// How the dispatcher shards coordinate their Algorithm-2 rotation
/// state.
///
/// The naive tier leaves every shard blind to the arrivals the other
/// shards handle, so each shard equalizes gaps in its *own* substream
/// and the superposed per-computer streams lose the global spacing
/// Algorithm 2 exists to provide (~+10% response ratio at `D = 16`),
/// while the elementwise-mean credit sync phase-locks the shards and
/// makes it worse. Phase-preserving coordination closes the gap with
/// three mechanisms:
///
/// 1. the splitter stamps every routed arrival with a global sequence
///    number, and each shard advances its private rotation machine by
///    the stamped gap (the arrivals its peers handled) before making a
///    real decision — each shard lazily replays the *global* Algorithm-2
///    sequence, so the union of the shards' decisions reconstructs the
///    single-dispatcher dispatch order;
/// 2. sync rounds reconcile credit *levels* (a per-shard constant
///    shift toward the tier mean, which cannot move any shard's argmin)
///    instead of overwriting phases with the tier mean;
/// 3. sync rounds also carry each shard's realized substream arrival
///    rate, whose tier total feeds Algorithm 1 re-optimization in
///    rate-aware policies (`ReORR`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Coordination {
    /// Independent shards; sync (when configured) is the elementwise
    /// mean merge. The historical tier — the serde default, so every
    /// pre-existing configuration keeps its exact behavior.
    #[default]
    Naive,
    /// Sequence-stamped splitter + virtual rotation advance + level
    /// (not phase) credit merge + realized-rate α re-optimization.
    PhasePreserving,
}

impl Coordination {
    /// Stable lowercase name for reports and bench labels.
    pub fn label(&self) -> &'static str {
        match self {
            Coordination::Naive => "naive",
            Coordination::PhasePreserving => "phase_preserving",
        }
    }
}

fn one() -> usize {
    1
}

/// The front-end tier configuration (`ClusterConfig::dispatch`).
///
/// The serde default — one dispatcher, no sync — reproduces the
/// single-dispatcher simulation bit-for-bit, so configurations
/// serialized before the tier existed parse (and run) unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DispatchSpec {
    /// Number of dispatcher shards `D`.
    #[serde(default = "one")]
    pub dispatchers: usize,
    /// How arrivals are partitioned across the shards.
    #[serde(default)]
    pub splitter: SplitterSpec,
    /// Optional periodic state-sync between shards; `None` leaves the
    /// shards fully independent.
    #[serde(default)]
    pub sync: Option<SyncSpec>,
    /// How the shards coordinate rotation state (inert at `D = 1`).
    #[serde(default)]
    pub coordination: Coordination,
}

impl Default for DispatchSpec {
    fn default() -> Self {
        DispatchSpec {
            dispatchers: 1,
            splitter: SplitterSpec::default(),
            sync: None,
            coordination: Coordination::default(),
        }
    }
}

impl DispatchSpec {
    /// A tier of `d` independent dispatchers with the given splitter.
    pub fn sharded(d: usize, splitter: SplitterSpec) -> Self {
        DispatchSpec {
            dispatchers: d,
            splitter,
            sync: None,
            coordination: Coordination::default(),
        }
    }

    /// Same tier with a state-sync plane.
    #[must_use]
    pub fn with_sync(mut self, sync: SyncSpec) -> Self {
        self.sync = Some(sync);
        self
    }

    /// Same tier with phase-preserving shard coordination.
    #[must_use]
    pub fn coordinated(mut self) -> Self {
        self.coordination = Coordination::PhasePreserving;
        self
    }

    /// Whether the tier is the invisible single-dispatcher default path.
    pub fn is_trivial(&self) -> bool {
        self.dispatchers == 1 && self.sync.is_none()
    }

    /// Validates the spec.
    ///
    /// # Errors
    /// [`HetschedError::InvalidConfig`] when a field is out of range.
    pub fn validate(&self) -> Result<(), HetschedError> {
        if self.dispatchers == 0 {
            return Err(HetschedError::InvalidConfig(
                "dispatch tier needs at least one dispatcher".into(),
            ));
        }
        if let SplitterSpec::SourceHash { sources } = self.splitter {
            if sources == 0 {
                return Err(HetschedError::InvalidConfig(
                    "source-hash splitter needs at least one source".into(),
                ));
            }
        }
        if let Some(sync) = &self.sync {
            sync.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_trivial_single_dispatcher() {
        let spec = DispatchSpec::default();
        assert_eq!(spec.dispatchers, 1);
        assert!(spec.sync.is_none());
        assert!(spec.is_trivial());
        spec.validate().unwrap();
    }

    #[test]
    fn sharded_builders_compose() {
        let spec = DispatchSpec::sharded(4, SplitterSpec::IidRandom)
            .with_sync(SyncSpec::every(500.0).with_latency(0.05));
        assert_eq!(spec.dispatchers, 4);
        assert!(!spec.is_trivial());
        let sync = spec.sync.unwrap();
        assert_eq!(sync.interval, 500.0);
        assert_eq!(sync.latency, 0.05);
        spec.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_fields() {
        let bad = DispatchSpec {
            dispatchers: 0,
            ..DispatchSpec::default()
        };
        assert!(bad.validate().is_err());
        let bad = DispatchSpec::sharded(2, SplitterSpec::SourceHash { sources: 0 });
        assert!(bad.validate().is_err());
        let bad =
            DispatchSpec::sharded(2, SplitterSpec::RoundRobin).with_sync(SyncSpec::every(0.0));
        assert!(bad.validate().is_err());
        let bad = DispatchSpec::sharded(2, SplitterSpec::RoundRobin)
            .with_sync(SyncSpec::every(10.0).with_latency(-1.0));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let spec = DispatchSpec::sharded(8, SplitterSpec::SourceHash { sources: 1000 })
            .with_sync(SyncSpec::every(250.0).with_latency(1.5));
        let json = serde_json::to_string(&spec).unwrap();
        let back: DispatchSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn empty_object_deserializes_to_default() {
        // Back-compat inside the section itself: every field defaults.
        let spec: DispatchSpec = serde_json::from_str("{}").unwrap();
        assert_eq!(spec, DispatchSpec::default());
        assert_eq!(spec.coordination, Coordination::Naive);
    }

    #[test]
    fn coordination_round_trips_and_defaults_to_naive() {
        let spec = DispatchSpec::sharded(16, SplitterSpec::IidRandom)
            .with_sync(SyncSpec::every(500.0).with_latency(5.0))
            .coordinated();
        assert_eq!(spec.coordination, Coordination::PhasePreserving);
        assert_eq!(spec.coordination.label(), "phase_preserving");
        spec.validate().unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back: DispatchSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // A pre-coordination serialization (no field) parses as naive.
        let old: DispatchSpec =
            serde_json::from_str("{\"dispatchers\": 4, \"splitter\": {\"kind\": \"round_robin\"}}")
                .unwrap();
        assert_eq!(old.coordination, Coordination::Naive);
    }
}

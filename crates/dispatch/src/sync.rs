//! The mergeable state snapshot and its consensus combinators.
//!
//! Two merge modes exist, selected by the tier's
//! [`Coordination`](crate::Coordination) setting:
//!
//! * [`consensus`] — the naive elementwise mean. Historical behavior,
//!   kept bit-for-bit: adopting the mean overwrites each shard's
//!   rotation *phase*, which phase-locks Algorithm-2 shards (every
//!   dispatcher favors the same computer right after a merge).
//! * [`consensus_coordinated`] — the phase-preserving variant. It
//!   computes the same per-server credit *levels* (the tier mean), but
//!   marks the snapshot so that credit policies adopt it as a per-shard
//!   constant shift toward the tier level rather than a copy: a constant
//!   shift leaves every within-shard credit difference — and therefore
//!   the shard's rotation offset — untouched. It also sums the shards'
//!   realized substream arrival rates into a tier rate for Algorithm-1
//!   re-optimization, and folds with sorted compensated (Neumaier)
//!   summation so the consensus is bitwise invariant under shard
//!   permutation.
//!
//! The merge algebra behind the coordinated mode: Algorithm 2's
//! dispatch decision depends only on credit *differences* within one
//! dispatcher (the argmin of `next`, ties by normalized assignments),
//! so the only linear merge that can never disturb a shard's rotation
//! is a per-shard constant shift `c_s ← c_s + δ_s`. Choosing
//! `δ_s = mean_i(level_i) − mean_i(c_s[i])` pulls every shard to the
//! tier's common credit level while conserving the tier's total credit:
//! `Σ_s δ_s = 0` exactly in real arithmetic, and bit-exactly whenever
//! the credit state is dyadic (power-of-two fractions and shard
//! counts), which the property suite pins.

/// A shard's mergeable policy state, published at each sync round.
///
/// Both vectors are indexed by server. A policy fills in whichever
/// parts of its state are meaningfully mergeable and leaves the rest
/// empty: Algorithm-2 policies publish their credit/deficit counters in
/// `credits`; dynamic policies publish their believed queue lengths in
/// `loads`. Empty vectors are skipped by [`consensus`], so policies
/// with disjoint state kinds coexist in one tier.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SyncState {
    /// Algorithm-2 credit/deficit counters, one per server.
    pub credits: Vec<f64>,
    /// Believed per-server load (queue length), one per server.
    pub loads: Vec<f64>,
    /// Realized arrival rate (jobs/s). In a published snapshot this is
    /// the shard's own substream rate since the previous publish (0
    /// when unmeasured); in a coordinated consensus it is the tier
    /// total, feeding Algorithm-1 re-optimization in rate-aware
    /// policies.
    pub rate: f64,
    /// Whether this snapshot is a phase-preserving consensus: credit
    /// policies must adopt `credits` as a level (constant shift), never
    /// as a phase (copy).
    pub phase_preserving: bool,
}

impl SyncState {
    /// A snapshot carrying only Algorithm-2 credits.
    pub fn with_credits(credits: Vec<f64>) -> Self {
        SyncState {
            credits,
            ..SyncState::default()
        }
    }

    /// Whether the snapshot carries no mergeable state at all.
    pub fn is_empty(&self) -> bool {
        self.credits.is_empty() && self.loads.is_empty()
    }
}

/// Neumaier-compensated sum of `values` in ascending `total_cmp` order.
///
/// Sorting first makes the result a pure function of the value
/// *multiset*: folding shard snapshots through this sum is bitwise
/// invariant under shard permutation, and on exactly-representable
/// (dyadic) inputs the compensation term vanishes so the sum is exact.
pub fn compensated_total(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mut sum = 0.0f64;
    let mut comp = 0.0f64;
    for &x in &sorted {
        let t = sum + x;
        if sum.abs() >= x.abs() {
            comp += (sum - t) + x;
        } else {
            comp += (x - t) + sum;
        }
        sum = t;
    }
    sum + comp
}

/// Permutation-invariant mean via [`compensated_total`].
fn compensated_mean(values: &[f64]) -> f64 {
    compensated_total(values) / values.len() as f64
}

fn mean_rows(rows: &[&[f64]], compensated: bool) -> Vec<f64> {
    let Some(width) = rows.iter().map(|r| r.len()).min() else {
        return Vec::new();
    };
    let n = rows.len() as f64;
    (0..width)
        .map(|i| {
            if compensated {
                let column: Vec<f64> = rows.iter().map(|r| r[i]).collect();
                compensated_mean(&column)
            } else {
                rows.iter().map(|r| r[i]).sum::<f64>() / n
            }
        })
        .collect()
}

fn populated<'a>(
    states: &'a [SyncState],
    field: impl Fn(&'a SyncState) -> &'a [f64],
) -> Vec<&'a [f64]> {
    states.iter().map(field).filter(|f| !f.is_empty()).collect()
}

/// Elementwise mean of each populated field across the shard snapshots.
///
/// Returns `None` when no shard published anything mergeable (the tier
/// then skips the round entirely). A field contributes to the consensus
/// only through the shards that populated it, and only positions shared
/// by every contributing shard are averaged — mismatched lengths
/// truncate to the shortest contributor rather than mixing servers.
pub fn consensus(states: &[SyncState]) -> Option<SyncState> {
    let merged = SyncState {
        credits: mean_rows(&populated(states, |s| &s.credits), false),
        loads: mean_rows(&populated(states, |s| &s.loads), false),
        rate: 0.0,
        phase_preserving: false,
    };
    if merged.is_empty() {
        None
    } else {
        Some(merged)
    }
}

/// Phase-preserving consensus: tier credit/load *levels* plus the tier
/// arrival rate, marked so adopters shift instead of copy.
///
/// The credit levels are numerically the same elementwise mean as
/// [`consensus`], but folded in sorted compensated order (bitwise
/// shard-permutation invariance) and flagged `phase_preserving`, which
/// changes how Algorithm-2 policies merge them: each shard applies the
/// constant shift `δ_s = mean(level) − mean(own credits)` — preserving
/// its rotation offset exactly — instead of copying the mean. Shard
/// rates sum (compensated) into the tier rate; unmeasured shards
/// (rate 0) contribute nothing.
pub fn consensus_coordinated(states: &[SyncState]) -> Option<SyncState> {
    let rates: Vec<f64> = states.iter().map(|s| s.rate).filter(|&r| r > 0.0).collect();
    let merged = SyncState {
        credits: mean_rows(&populated(states, |s| &s.credits), true),
        loads: mean_rows(&populated(states, |s| &s.loads), true),
        rate: compensated_total(&rates),
        phase_preserving: true,
    };
    if merged.is_empty() {
        None
    } else {
        Some(merged)
    }
}

/// The level-reconciliation shift a shard applies when adopting a
/// phase-preserving consensus: the compensated mean gap between the
/// consensus levels and the shard's own credits (over the shared
/// prefix; a foreign-width consensus yields no shift).
///
/// Applying `credits[i] += shift` for all `i` moves the shard to the
/// tier's credit level without moving its rotation offset, and the
/// shifts of all contributing shards sum to zero (exactly on dyadic
/// state, to rounding otherwise) — total tier credit is conserved.
pub fn level_shift(consensus: &SyncState, credits: &[f64]) -> Option<f64> {
    if consensus.credits.len() != credits.len() || credits.is_empty() {
        return None;
    }
    let gaps: Vec<f64> = consensus
        .credits
        .iter()
        .zip(credits)
        .map(|(l, c)| l - c)
        .collect();
    Some(compensated_mean(&gaps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_states_produce_no_consensus() {
        assert_eq!(consensus(&[]), None);
        assert_eq!(
            consensus(&[SyncState::default(), SyncState::default()]),
            None
        );
        assert_eq!(consensus_coordinated(&[]), None);
    }

    #[test]
    fn credits_average_elementwise() {
        let a = SyncState::with_credits(vec![1.0, 2.0, 3.0]);
        let b = SyncState::with_credits(vec![3.0, 4.0, 5.0]);
        let c = consensus(&[a, b]).unwrap();
        assert_eq!(c.credits, vec![2.0, 3.0, 4.0]);
        assert!(c.loads.is_empty());
        assert!(!c.phase_preserving);
    }

    #[test]
    fn loads_average_and_empty_contributors_are_skipped() {
        let a = SyncState {
            loads: vec![4.0, 0.0],
            ..SyncState::default()
        };
        let empty = SyncState::default();
        let b = SyncState {
            loads: vec![0.0, 2.0],
            ..SyncState::default()
        };
        let c = consensus(&[a, empty, b]).unwrap();
        // The empty shard does not drag the mean toward zero.
        assert_eq!(c.loads, vec![2.0, 1.0]);
    }

    #[test]
    fn mismatched_lengths_truncate_to_shortest() {
        let a = SyncState::with_credits(vec![2.0, 4.0, 6.0]);
        let b = SyncState::with_credits(vec![4.0, 6.0]);
        let c = consensus(&[a, b]).unwrap();
        assert_eq!(c.credits, vec![3.0, 5.0]);
    }

    #[test]
    fn single_shard_consensus_is_its_own_state() {
        let a = SyncState {
            credits: vec![1.5, -0.5],
            loads: vec![3.0],
            ..SyncState::default()
        };
        assert_eq!(consensus(std::slice::from_ref(&a)).unwrap(), a);
    }

    #[test]
    fn coordinated_consensus_levels_match_naive_mean_on_exact_input() {
        let a = SyncState::with_credits(vec![1.0, 2.0, 3.0]);
        let b = SyncState::with_credits(vec![3.0, 4.0, 5.0]);
        let naive = consensus(&[a.clone(), b.clone()]).unwrap();
        let coord = consensus_coordinated(&[a, b]).unwrap();
        assert_eq!(coord.credits, naive.credits);
        assert!(coord.phase_preserving);
        assert_eq!(coord.rate, 0.0, "unmeasured shards contribute no rate");
    }

    #[test]
    fn coordinated_consensus_sums_rates_and_is_permutation_invariant() {
        let mk = |credits: Vec<f64>, rate: f64| SyncState {
            credits,
            rate,
            ..SyncState::default()
        };
        let shards = vec![
            mk(vec![0.4, -0.7, 1.3], 0.011),
            mk(vec![1.9, 0.2, -2.2], 0.033),
            mk(vec![-0.1, 0.6, 0.8], 0.0), // unmeasured
            mk(vec![2.5, -1.4, 0.9], 0.019),
        ];
        let forward = consensus_coordinated(&shards).unwrap();
        let mut reversed = shards.clone();
        reversed.reverse();
        let backward = consensus_coordinated(&reversed).unwrap();
        for (x, y) in forward.credits.iter().zip(&backward.credits) {
            assert_eq!(x.to_bits(), y.to_bits(), "levels must be order-free");
        }
        assert_eq!(forward.rate.to_bits(), backward.rate.to_bits());
        assert!((forward.rate - 0.063).abs() < 1e-12);
    }

    #[test]
    fn level_shift_conserves_total_and_ignores_foreign_widths() {
        let rows = [
            vec![1.0, 3.0, -2.0],
            vec![0.5, 0.5, 0.5],
            vec![-4.0, 2.0, 8.0],
        ];
        let states: Vec<SyncState> = rows
            .iter()
            .map(|r| SyncState::with_credits(r.clone()))
            .collect();
        let merged = consensus_coordinated(&states).unwrap();
        let shifts: Vec<f64> = rows
            .iter()
            .map(|r| level_shift(&merged, r).unwrap())
            .collect();
        // Σ_s δ_s = 0: total tier credit is conserved by the merge.
        assert!(compensated_total(&shifts).abs() < 1e-12, "{shifts:?}");
        assert_eq!(level_shift(&merged, &[1.0, 2.0]), None);
        assert_eq!(level_shift(&merged, &[]), None);
    }

    #[test]
    fn compensated_total_is_exact_on_dyadic_input_and_order_free() {
        // Dyadic values: sums are exactly representable, so the
        // compensated fold returns the exact total in any order.
        let xs = [0.5, -0.25, 8.0, -0.125, 2.0, -4.0];
        let mut rev = xs.to_vec();
        rev.reverse();
        assert_eq!(compensated_total(&xs), 6.125);
        assert_eq!(
            compensated_total(&xs).to_bits(),
            compensated_total(&rev).to_bits()
        );
        // Classic cancellation case a plain fold gets wrong.
        let hard = [1e16, 1.0, -1e16];
        assert_eq!(compensated_total(&hard), 1.0);
    }
}

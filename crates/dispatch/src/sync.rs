//! The mergeable state snapshot and its consensus combinator.

/// A shard's mergeable policy state, published at each sync round.
///
/// Both vectors are indexed by server. A policy fills in whichever
/// parts of its state are meaningfully mergeable and leaves the rest
/// empty: Algorithm-2 policies publish their credit/deficit counters in
/// `credits`; dynamic policies publish their believed queue lengths in
/// `loads`. Empty vectors are skipped by [`consensus`], so policies
/// with disjoint state kinds coexist in one tier.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SyncState {
    /// Algorithm-2 credit/deficit counters, one per server.
    pub credits: Vec<f64>,
    /// Believed per-server load (queue length), one per server.
    pub loads: Vec<f64>,
}

impl SyncState {
    /// Whether the snapshot carries no mergeable state at all.
    pub fn is_empty(&self) -> bool {
        self.credits.is_empty() && self.loads.is_empty()
    }
}

/// Elementwise mean of each populated field across the shard snapshots.
///
/// Returns `None` when no shard published anything mergeable (the tier
/// then skips the round entirely). A field contributes to the consensus
/// only through the shards that populated it, and only positions shared
/// by every contributing shard are averaged — mismatched lengths
/// truncate to the shortest contributor rather than mixing servers.
pub fn consensus(states: &[SyncState]) -> Option<SyncState> {
    fn mean_rows(rows: Vec<&[f64]>) -> Vec<f64> {
        let Some(width) = rows.iter().map(|r| r.len()).min() else {
            return Vec::new();
        };
        let n = rows.len() as f64;
        (0..width)
            .map(|i| rows.iter().map(|r| r[i]).sum::<f64>() / n)
            .collect()
    }

    let credits = mean_rows(
        states
            .iter()
            .filter(|s| !s.credits.is_empty())
            .map(|s| s.credits.as_slice())
            .collect(),
    );
    let loads = mean_rows(
        states
            .iter()
            .filter(|s| !s.loads.is_empty())
            .map(|s| s.loads.as_slice())
            .collect(),
    );
    let merged = SyncState { credits, loads };
    if merged.is_empty() {
        None
    } else {
        Some(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_states_produce_no_consensus() {
        assert_eq!(consensus(&[]), None);
        assert_eq!(
            consensus(&[SyncState::default(), SyncState::default()]),
            None
        );
    }

    #[test]
    fn credits_average_elementwise() {
        let a = SyncState {
            credits: vec![1.0, 2.0, 3.0],
            loads: Vec::new(),
        };
        let b = SyncState {
            credits: vec![3.0, 4.0, 5.0],
            loads: Vec::new(),
        };
        let c = consensus(&[a, b]).unwrap();
        assert_eq!(c.credits, vec![2.0, 3.0, 4.0]);
        assert!(c.loads.is_empty());
    }

    #[test]
    fn loads_average_and_empty_contributors_are_skipped() {
        let a = SyncState {
            credits: Vec::new(),
            loads: vec![4.0, 0.0],
        };
        let empty = SyncState::default();
        let b = SyncState {
            credits: Vec::new(),
            loads: vec![0.0, 2.0],
        };
        let c = consensus(&[a, empty, b]).unwrap();
        // The empty shard does not drag the mean toward zero.
        assert_eq!(c.loads, vec![2.0, 1.0]);
    }

    #[test]
    fn mismatched_lengths_truncate_to_shortest() {
        let a = SyncState {
            credits: vec![2.0, 4.0, 6.0],
            loads: Vec::new(),
        };
        let b = SyncState {
            credits: vec![4.0, 6.0],
            loads: Vec::new(),
        };
        let c = consensus(&[a, b]).unwrap();
        assert_eq!(c.credits, vec![3.0, 5.0]);
    }

    #[test]
    fn single_shard_consensus_is_its_own_state() {
        let a = SyncState {
            credits: vec![1.5, -0.5],
            loads: vec![3.0],
        };
        assert_eq!(consensus(std::slice::from_ref(&a)).unwrap(), a);
    }
}

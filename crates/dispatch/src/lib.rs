//! # hetsched-dispatch — the sharded multi-dispatcher front-end tier
//!
//! The paper's Algorithm 2 equalizes inter-arrival gaps only because a
//! *single* dispatcher observes the entire global arrival stream. A
//! production front-end is sharded: `D` dispatchers each see a slice of
//! the stream and run their own policy instance over private state. This
//! crate supplies the machinery to model that tier:
//!
//! * [`DispatchSpec`] — the serde-friendly `dispatch:` section of a
//!   cluster configuration: how many dispatchers, how arrivals are
//!   split ([`SplitterSpec`]), and the optional periodic state-sync
//!   plane ([`SyncSpec`]).
//! * [`Splitter`] — the runtime splitter. Its random draws come from a
//!   dedicated RNG stream ([`SPLITTER_STREAM`]), disjoint from the
//!   workload streams (arrivals 0, sizes 1, dispatch 2, network 3) and
//!   the per-server fault streams (4 + i), so enabling sharding never
//!   perturbs the arrival or service processes.
//! * [`SyncState`] / [`consensus`] — the mergeable snapshot each policy
//!   shard publishes (Algorithm-2 credit/deficit counters, dynamic
//!   believed loads) and the elementwise-mean consensus the sync plane
//!   ships back to every shard after the configured one-way latency.
//! * [`Coordination`] / [`consensus_coordinated`] — the
//!   phase-preserving coordination mode: the splitter stamps every
//!   arrival with a global sequence number so each shard can replay
//!   its peers' inter-arrival gaps as virtual rotation steps, sync
//!   rounds reconcile credit *levels* (a per-shard constant shift that
//!   cannot move a shard's argmin) instead of overwriting phases, and
//!   the consensus carries the tier's realized arrival rate for
//!   Algorithm-1 re-optimization. See the `sync` module docs for the
//!   merge algebra.
//!
//! **The load-bearing invariant**: with `dispatchers = 1` and sync
//! disabled the tier is *structurally invisible* — [`Splitter::route`]
//! returns shard 0 without creating or drawing from any RNG, and no
//! sync event is ever scheduled — so a `D = 1` run is bit-identical to
//! the pre-tier single-dispatcher simulation on any event-list backend,
//! at any thread count, with or without fault injection.

#![warn(missing_docs)]

mod plane;
mod spec;
mod splitter;
mod sync;

pub use plane::SyncExchange;
pub use spec::{Coordination, DispatchSpec, SplitterSpec, SyncSpec};
pub use splitter::{Splitter, SPLITTER_STREAM};
pub use sync::{compensated_total, consensus, consensus_coordinated, level_shift, SyncState};

//! The runtime arrival splitter.

use crate::spec::{DispatchSpec, SplitterSpec};
use hetsched_desim::Rng64;

/// RNG stream index reserved for splitter draws.
///
/// Workload streams occupy 0..=3 (arrivals, sizes, dispatch, network)
/// and fault streams occupy `4 + server`. Placing the splitter at
/// `1 << 40` keeps it disjoint from every per-server stream any
/// realistic cluster size can reach, so enabling sharding never shifts
/// an existing stream.
pub const SPLITTER_STREAM: u64 = 1 << 40;

enum Router {
    /// `D = 1`: every arrival routes to shard 0 with zero state and
    /// zero RNG draws — the structural-invisibility path.
    Trivial,
    RoundRobin {
        next: usize,
    },
    IidRandom {
        rng: Rng64,
    },
    SourceHash {
        sources: u64,
        rng: Rng64,
    },
}

/// Partitions the global arrival stream across `D` dispatcher shards.
pub struct Splitter {
    shards: usize,
    router: Router,
    /// Arrivals routed so far — the global sequence stamp coordinated
    /// shards use to reconstruct the inter-arrival gaps of their peers.
    routed: u64,
}

/// SplitMix64 finalizer; a full-avalanche hash so consecutive source ids
/// spread uniformly over the shards.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SplitterSpec {
    /// The long-run arrival share each of `d` shards receives under
    /// this splitter.
    ///
    /// Round-robin and iid-random split uniformly; source-hash shares
    /// follow the hash partition of the source space, which is *not*
    /// uniform for small source counts — the correct yardstick for
    /// per-shard share-deviation accounting (measuring a source-hash
    /// tier against `1/D` misreads hash imbalance as splitter error).
    pub fn expected_shares(&self, d: usize) -> Vec<f64> {
        let d = d.max(1);
        match self {
            SplitterSpec::RoundRobin | SplitterSpec::IidRandom => vec![1.0 / d as f64; d],
            SplitterSpec::SourceHash { sources } => {
                let sources = (*sources).max(1);
                let mut counts = vec![0u64; d];
                for source in 0..sources {
                    counts[(mix64(source) % d as u64) as usize] += 1;
                }
                counts
                    .into_iter()
                    .map(|c| c as f64 / sources as f64)
                    .collect()
            }
        }
    }
}

impl Splitter {
    /// Builds the splitter for a run. An RNG is created only when
    /// `D > 1` *and* the splitter kind actually draws randomness.
    pub fn new(spec: &DispatchSpec, seed: u64) -> Self {
        let shards = spec.dispatchers;
        let router = if shards <= 1 {
            Router::Trivial
        } else {
            match spec.splitter {
                SplitterSpec::RoundRobin => Router::RoundRobin { next: 0 },
                SplitterSpec::IidRandom => Router::IidRandom {
                    rng: Rng64::stream(seed, SPLITTER_STREAM),
                },
                SplitterSpec::SourceHash { sources } => Router::SourceHash {
                    sources: sources.max(1),
                    rng: Rng64::stream(seed, SPLITTER_STREAM),
                },
            }
        };
        Splitter {
            shards,
            router,
            routed: 0,
        }
    }

    /// Number of dispatcher shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Global sequence number of routed arrivals: how many arrivals the
    /// splitter has stamped so far (1-based after the first `route`).
    ///
    /// Coordinated shards read the stamp to learn how many arrivals
    /// their peers handled since their own last one — the splitter is
    /// the one component that sees the whole stream, so the stamp is
    /// information a real front-end router can attach for free.
    pub fn sequence(&self) -> u64 {
        self.routed
    }

    /// Routes the next arrival, returning the shard index in
    /// `0..shards()` and advancing the sequence stamp.
    pub fn route(&mut self) -> usize {
        self.routed += 1;
        match &mut self.router {
            Router::Trivial => 0,
            Router::RoundRobin { next } => {
                let shard = *next;
                *next = (*next + 1) % self.shards;
                shard
            }
            Router::IidRandom { rng } => {
                // Uniform over shards via a 53-bit float draw; the shard
                // count is tiny so modulo bias from integer reduction is
                // avoided entirely.
                let u = rng.next_f64();
                let shard = (u * self.shards as f64) as usize;
                shard.min(self.shards - 1)
            }
            Router::SourceHash { sources, rng } => {
                // The arrival carries a stream key: which of the logical
                // job sources emitted it. One draw picks the source, the
                // hash pins that source to a shard forever.
                let source = (rng.next_f64() * *sources as f64) as u64;
                let source = source.min(*sources - 1);
                (mix64(source) % self.shards as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DispatchSpec, SplitterSpec};

    #[test]
    fn trivial_splitter_routes_everything_to_shard_zero() {
        let mut s = Splitter::new(&DispatchSpec::default(), 42);
        assert_eq!(s.shards(), 1);
        for _ in 0..100 {
            assert_eq!(s.route(), 0);
        }
    }

    #[test]
    fn round_robin_cycles_exactly() {
        let spec = DispatchSpec::sharded(4, SplitterSpec::RoundRobin);
        let mut s = Splitter::new(&spec, 42);
        let got: Vec<usize> = (0..8).map(|_| s.route()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn iid_random_covers_all_shards_roughly_uniformly() {
        let spec = DispatchSpec::sharded(4, SplitterSpec::IidRandom);
        let mut s = Splitter::new(&spec, 7);
        let mut counts = [0u64; 4];
        for _ in 0..40_000 {
            let shard = s.route();
            assert!(shard < 4);
            counts[shard] += 1;
        }
        for &c in &counts {
            // Expected 10k per shard; 4-sigma band is ~±350.
            assert!((9_000..11_000).contains(&c), "skewed counts {counts:?}");
        }
    }

    #[test]
    fn source_hash_is_sticky_per_source() {
        // With a single source every arrival must land on one shard.
        let spec = DispatchSpec::sharded(8, SplitterSpec::SourceHash { sources: 1 });
        let mut s = Splitter::new(&spec, 13);
        let first = s.route();
        for _ in 0..100 {
            assert_eq!(s.route(), first);
        }
        // With many sources all shards are eventually hit.
        let spec = DispatchSpec::sharded(8, SplitterSpec::SourceHash { sources: 10_000 });
        let mut s = Splitter::new(&spec, 13);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[s.route()] = true;
        }
        assert!(seen.iter().all(|&b| b), "unreached shards: {seen:?}");
    }

    #[test]
    fn routing_is_deterministic_per_seed() {
        let spec = DispatchSpec::sharded(4, SplitterSpec::IidRandom);
        let mut a = Splitter::new(&spec, 99);
        let mut b = Splitter::new(&spec, 99);
        for _ in 0..1000 {
            assert_eq!(a.route(), b.route());
        }
    }

    #[test]
    fn sequence_stamp_counts_every_routed_arrival() {
        let spec = DispatchSpec::sharded(4, SplitterSpec::RoundRobin);
        let mut s = Splitter::new(&spec, 42);
        assert_eq!(s.sequence(), 0);
        for k in 1..=10u64 {
            s.route();
            assert_eq!(s.sequence(), k);
        }
        // The trivial splitter stamps too (inert but consistent).
        let mut t = Splitter::new(&DispatchSpec::default(), 42);
        t.route();
        assert_eq!(t.sequence(), 1);
    }

    #[test]
    fn expected_shares_are_uniform_for_symmetric_splitters() {
        for spec in [SplitterSpec::RoundRobin, SplitterSpec::IidRandom] {
            let shares = spec.expected_shares(8);
            assert_eq!(shares, vec![0.125; 8]);
        }
        assert_eq!(SplitterSpec::RoundRobin.expected_shares(1), vec![1.0]);
    }

    #[test]
    fn source_hash_expected_shares_match_realized_routing() {
        // The hash partition of 64 sources over 4 shards is exactly
        // computable; the realized long-run shares must converge to it
        // (not to 1/D — small source counts hash unevenly).
        let spec = SplitterSpec::SourceHash { sources: 64 };
        let shares = spec.expected_shares(4);
        assert_eq!(shares.len(), 4);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(
            shares.iter().any(|&s| (s - 0.25).abs() > 1e-9),
            "64 sources over 4 shards should not hash perfectly evenly: {shares:?}"
        );
        let dspec = DispatchSpec::sharded(4, spec);
        let mut splitter = Splitter::new(&dspec, 13);
        let n = 400_000usize;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[splitter.route()] += 1;
        }
        for (shard, (&c, &want)) in counts.iter().zip(&shares).enumerate() {
            let got = c as f64 / n as f64;
            assert!(
                (got - want).abs() < 0.01,
                "shard {shard}: realized {got} vs hash-expected {want}"
            );
        }
    }

    #[test]
    fn splitter_stream_is_disjoint_from_workload_and_fault_streams() {
        // The first draws from the splitter stream must differ from the
        // corresponding draws of every stream the simulation already
        // uses with the same seed.
        let seed = 4242;
        let mut split = Rng64::stream(seed, SPLITTER_STREAM);
        let first = split.next_f64();
        for stream in (0..4).chain(4..260) {
            let mut other = Rng64::stream(seed, stream);
            assert_ne!(first, other.next_f64(), "collision with stream {stream}");
        }
    }
}

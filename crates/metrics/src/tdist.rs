//! Student-t critical values.
//!
//! Every data point in the paper "is the average result of 10 independent
//! runs with different random number streams" (§4.1). With 10 runs the
//! 95% confidence half-width uses `t_{0.975, 9} = 2.262`, not the normal
//! 1.96 — at these sample sizes the difference matters.

/// Two-sided 95% critical value `t_{0.975, df}`.
///
/// Exact table entries for df ≤ 30, then a smooth approximation converging
/// to the normal quantile 1.959964 as df → ∞.
///
/// # Panics
/// Panics if `df == 0`.
pub fn t_quantile_975(df: u64) -> f64 {
    assert!(df > 0, "degrees of freedom must be positive");
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 1-10
        2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11-20
        2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21-30
    ];
    if df <= 30 {
        TABLE[(df - 1) as usize]
    } else {
        // Cornish–Fisher-style expansion of the t quantile around the
        // normal quantile z = 1.959964:
        // t ≈ z + (z³+z)/(4·df) + (5z⁵+16z³+3z)/(96·df²)
        let z = 1.959_963_985;
        let z3 = z * z * z;
        let z5 = z3 * z * z;
        let d = df as f64;
        z + (z3 + z) / (4.0 * d) + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * d * d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_values_match_references() {
        assert_eq!(t_quantile_975(1), 12.706);
        assert_eq!(t_quantile_975(9), 2.262); // the paper's 10-run case
        assert_eq!(t_quantile_975(30), 2.042);
    }

    #[test]
    fn approximation_is_continuous_at_boundary() {
        // df=30 table vs df=31 approximation should be close.
        let gap = (t_quantile_975(30) - t_quantile_975(31)).abs();
        assert!(gap < 0.005, "discontinuity {gap} at df=30/31");
    }

    #[test]
    fn approximation_matches_known_values() {
        // t_{0.975, 60} ≈ 2.000, t_{0.975, 120} ≈ 1.980.
        assert!((t_quantile_975(60) - 2.000).abs() < 0.005);
        assert!((t_quantile_975(120) - 1.980).abs() < 0.005);
    }

    #[test]
    fn converges_to_normal() {
        assert!((t_quantile_975(1_000_000) - 1.959964).abs() < 1e-4);
    }

    #[test]
    fn monotone_decreasing_in_df() {
        let mut prev = t_quantile_975(1);
        for df in 2..200 {
            let cur = t_quantile_975(df);
            assert!(cur <= prev + 1e-9, "not monotone at df={df}");
            prev = cur;
        }
    }

    #[test]
    #[should_panic(expected = "degrees of freedom")]
    fn rejects_zero_df() {
        t_quantile_975(0);
    }
}

//! Replication summaries.
//!
//! The paper's methodology (§4.1): each data point is the average of 10
//! independent runs. [`Summary`] condenses one run's accumulator into a
//! plain value set; [`CiSummary`] aggregates one scalar metric across
//! replications into `mean ± 95% CI` using Student-t critical values.

use serde::{Deserialize, Serialize};

use crate::tdist::t_quantile_975;
use crate::welford::Welford;

/// Point summary of a single run's observations of one metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Extracts a summary from a Welford accumulator.
    pub fn from_welford(w: &Welford) -> Self {
        Summary {
            count: w.count(),
            mean: w.mean(),
            std_dev: w.std_dev(),
            min: if w.count() == 0 { 0.0 } else { w.min() },
            max: if w.count() == 0 { 0.0 } else { w.max() },
        }
    }
}

/// Mean ± 95% confidence interval across replications of one metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CiSummary {
    /// Number of replications.
    pub n: u64,
    /// Mean across replications.
    pub mean: f64,
    /// 95% confidence half-width (0 for a single replication).
    pub half_width: f64,
}

impl CiSummary {
    /// Aggregates per-replication values.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "need at least one replication");
        let w: Welford = values.iter().copied().collect();
        let half_width = if w.count() < 2 {
            0.0
        } else {
            t_quantile_975(w.count() - 1) * w.std_error()
        };
        CiSummary {
            n: w.count(),
            mean: w.mean(),
            half_width,
        }
    }

    /// The "metric not recorded" sentinel (`n = 0`): the serde default
    /// for summaries added after results were first saved, so old
    /// result files still load.
    pub fn absent() -> Self {
        CiSummary {
            n: 0,
            mean: 0.0,
            half_width: 0.0,
        }
    }

    /// Lower bound of the interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }

    /// Whether two interval estimates overlap (a quick "no significant
    /// difference" check).
    pub fn overlaps(&self, other: &CiSummary) -> bool {
        self.lo() <= other.hi() && other.lo() <= self.hi()
    }
}

impl std::fmt::Display for CiSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_from_welford() {
        let w: Welford = [1.0, 2.0, 3.0].into_iter().collect();
        let s = Summary::from_welford(&w);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn summary_of_empty_is_zeroed() {
        let s = Summary::from_welford(&Welford::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn ci_single_value_has_zero_width() {
        let ci = CiSummary::from_values(&[5.0]);
        assert_eq!(ci.mean, 5.0);
        assert_eq!(ci.half_width, 0.0);
        assert!(ci.contains(5.0));
    }

    #[test]
    fn ci_ten_replications_uses_t9() {
        // Symmetric values around 10 with known spread.
        let values: Vec<f64> = (0..10).map(|i| 10.0 + (i as f64 - 4.5)).collect();
        let ci = CiSummary::from_values(&values);
        assert_eq!(ci.n, 10);
        assert!((ci.mean - 10.0).abs() < 1e-12);
        // s = sqrt(Σ(i−4.5)²/9) = sqrt(82.5/9); hw = 2.262·s/√10
        let s = (82.5f64 / 9.0).sqrt();
        let expected = 2.262 * s / 10f64.sqrt();
        assert!((ci.half_width - expected).abs() < 1e-9);
    }

    #[test]
    fn interval_bounds_and_contains() {
        let ci = CiSummary {
            n: 5,
            mean: 10.0,
            half_width: 2.0,
        };
        assert_eq!(ci.lo(), 8.0);
        assert_eq!(ci.hi(), 12.0);
        assert!(ci.contains(9.0));
        assert!(!ci.contains(12.5));
    }

    #[test]
    fn overlap_detection() {
        let a = CiSummary {
            n: 5,
            mean: 10.0,
            half_width: 2.0,
        };
        let b = CiSummary {
            n: 5,
            mean: 13.0,
            half_width: 2.0,
        };
        let c = CiSummary {
            n: 5,
            mean: 20.0,
            half_width: 1.0,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn display_formats() {
        let ci = CiSummary {
            n: 3,
            mean: 1.23456,
            half_width: 0.1,
        };
        assert_eq!(format!("{ci}"), "1.2346 ± 0.1000");
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn rejects_empty_values() {
        CiSummary::from_values(&[]);
    }
}

//! # hetsched-metrics — streaming statistics for simulation output
//!
//! The paper evaluates schedulers on three metrics (§2.3, §4.1):
//!
//! * **mean response time** — average job completion time;
//! * **mean response ratio** — average of (response time / job size),
//!   where job size is the completion time on an idle speed-1 machine;
//! * **fairness** — the *standard deviation* of the response ratio
//!   (smaller is better).
//!
//! plus the **workload allocation deviation** `Σ_i (α_i − α'_i)²` used to
//! compare dispatchers in Figure 2.
//!
//! Simulations generate millions of observations, so everything here is
//! single-pass and O(1) memory per statistic:
//!
//! * [`Welford`] — numerically stable running mean/variance (with merge,
//!   for combining replications);
//! * [`TimeWeighted`] — integral-based averages for utilization and queue
//!   length;
//! * [`Histogram`] — log-spaced bins with quantile queries;
//! * [`P2Quantile`] — the Jain–Chlamtac P² streaming quantile estimator;
//! * [`BatchMeans`] — batch-means confidence intervals for steady-state
//!   simulation output;
//! * [`DeviationTracker`] — Figure 2's per-interval allocation deviation;
//! * [`Summary`] / [`CiSummary`] — aggregation across replications with
//!   Student-t confidence intervals.

#![warn(missing_docs)]

pub mod batch_means;
pub mod deviation;
pub mod histogram;
pub mod quantile;
pub mod summary;
pub mod tdist;
pub mod timeweighted;
pub mod welford;

pub use batch_means::BatchMeans;
pub use deviation::DeviationTracker;
pub use histogram::Histogram;
pub use quantile::P2Quantile;
pub use summary::{CiSummary, Summary};
pub use tdist::t_quantile_975;
pub use timeweighted::TimeWeighted;
pub use welford::Welford;

//! Time-weighted averages.
//!
//! Server utilization and mean queue length are *time* averages, not
//! per-job averages: a queue that holds 10 jobs for one second and 0 jobs
//! for nine seconds has mean length 1.0. [`TimeWeighted`] integrates a
//! piecewise-constant signal exactly.

use serde::{Deserialize, Serialize};

/// Integrates a piecewise-constant signal over time.
///
/// Call [`TimeWeighted::update`] *before* changing the signal's value: it
/// accrues the integral of the current value up to `now`, then records the
/// new value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: f64,
    last_t: f64,
    value: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Starts tracking at time `start` with initial value `value`.
    pub fn new(start: f64, value: f64) -> Self {
        assert!(start.is_finite(), "start time must be finite");
        assert!(value.is_finite(), "initial value must be finite");
        TimeWeighted {
            start,
            last_t: start,
            value,
            integral: 0.0,
            peak: value,
        }
    }

    /// Accrues the integral up to `now`, then switches to `new_value`.
    ///
    /// # Panics
    /// Panics if `now` precedes the previous update (time must not run
    /// backwards).
    pub fn update(&mut self, now: f64, new_value: f64) {
        assert!(
            now >= self.last_t,
            "time ran backwards: {now} < {}",
            self.last_t
        );
        debug_assert!(new_value.is_finite());
        self.integral += self.value * (now - self.last_t);
        self.last_t = now;
        self.value = new_value;
        self.peak = self.peak.max(new_value);
    }

    /// Accrues up to `now` without changing the value (e.g. at the
    /// horizon, to close out the integral).
    pub fn touch(&mut self, now: f64) {
        let v = self.value;
        self.update(now, v);
    }

    /// The current signal value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The running integral `∫ value dt` from `start` to the last update.
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// The integral extended to `now` *without* mutating the tracker.
    ///
    /// Because the signal is piecewise constant, the integral at any
    /// `now >= last update` is the accrued integral plus the current
    /// value held over the remaining span. Observability probes use this
    /// to read windowed integrals mid-run without perturbing the state
    /// the simulation itself will later finalize.
    ///
    /// # Panics
    /// Panics if `now` precedes the previous update.
    pub fn integral_at(&self, now: f64) -> f64 {
        assert!(
            now >= self.last_t,
            "time ran backwards: {now} < {}",
            self.last_t
        );
        self.integral + self.value * (now - self.last_t)
    }

    /// Time-average of the signal between `start` and the last update
    /// (0 if no time has elapsed).
    pub fn time_average(&self) -> f64 {
        let elapsed = self.last_t - self.start;
        if elapsed <= 0.0 {
            0.0
        } else {
            self.integral / elapsed
        }
    }

    /// The largest value the signal has taken.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Discards history and restarts the averaging window at `now`,
    /// keeping the current value. Used at the end of the warmup period so
    /// statistics reflect only the steady state.
    pub fn reset_window(&mut self, now: f64) {
        assert!(now >= self.last_t, "time ran backwards");
        self.start = now;
        self.last_t = now;
        self.integral = 0.0;
        self.peak = self.value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_average() {
        let mut tw = TimeWeighted::new(0.0, 3.0);
        tw.touch(10.0);
        assert_eq!(tw.time_average(), 3.0);
        assert_eq!(tw.integral(), 30.0);
    }

    #[test]
    fn step_signal_average() {
        // 10 jobs for 1 s, then 0 jobs for 9 s → mean 1.0.
        let mut tw = TimeWeighted::new(0.0, 10.0);
        tw.update(1.0, 0.0);
        tw.touch(10.0);
        assert!((tw.time_average() - 1.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 10.0);
    }

    #[test]
    fn utilization_tracking() {
        // Busy (1.0) on [0,2) and [5,6); idle otherwise, horizon 10.
        let mut tw = TimeWeighted::new(0.0, 1.0);
        tw.update(2.0, 0.0);
        tw.update(5.0, 1.0);
        tw.update(6.0, 0.0);
        tw.touch(10.0);
        assert!((tw.time_average() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_elapsed_is_zero_average() {
        let tw = TimeWeighted::new(5.0, 42.0);
        assert_eq!(tw.time_average(), 0.0);
    }

    #[test]
    fn reset_window_discards_history() {
        let mut tw = TimeWeighted::new(0.0, 100.0);
        tw.update(10.0, 1.0); // huge warmup transient
        tw.reset_window(10.0);
        tw.touch(20.0);
        assert!((tw.time_average() - 1.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 1.0);
    }

    #[test]
    fn multiple_updates_at_same_instant() {
        let mut tw = TimeWeighted::new(0.0, 1.0);
        tw.update(5.0, 2.0);
        tw.update(5.0, 3.0); // zero-width segment contributes nothing
        tw.touch(10.0);
        assert!((tw.time_average() - (5.0 + 15.0) / 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time ran backwards")]
    fn rejects_backwards_time() {
        let mut tw = TimeWeighted::new(0.0, 1.0);
        tw.update(5.0, 2.0);
        tw.update(4.0, 3.0);
    }

    #[test]
    fn value_reflects_last_update() {
        let mut tw = TimeWeighted::new(0.0, 1.0);
        tw.update(1.0, 7.0);
        assert_eq!(tw.value(), 7.0);
    }

    #[test]
    fn integral_at_reads_ahead_without_mutating() {
        let mut tw = TimeWeighted::new(0.0, 2.0);
        tw.update(3.0, 4.0); // ∫ = 6 so far, value 4 from t = 3
        assert_eq!(tw.integral_at(5.0), 6.0 + 4.0 * 2.0);
        assert_eq!(tw.integral(), 6.0, "read must not accrue");
        assert_eq!(tw.integral_at(3.0), 6.0, "zero extension is identity");
        tw.touch(5.0);
        assert_eq!(tw.integral(), 14.0, "later accrual agrees with the read");
    }

    #[test]
    #[should_panic(expected = "time ran backwards")]
    fn integral_at_rejects_backwards_time() {
        let mut tw = TimeWeighted::new(0.0, 1.0);
        tw.update(5.0, 2.0);
        tw.integral_at(4.0);
    }
}

//! Workload allocation deviation (Figure 2's metric).
//!
//! Footnote 4 of the paper defines the deviation of a dispatching strategy
//! in an observation interval as `Σ_i (α_i − α'_i)²`, where `α_i` is the
//! fraction of jobs computer `c_i` *should* receive and `α'_i` the
//! fraction it *actually* received during the interval. A smooth
//! dispatcher keeps the deviation small in every interval; a random
//! dispatcher fluctuates widely. [`DeviationTracker`] slices time into
//! fixed-length intervals and reports one deviation value per interval.

use serde::{Deserialize, Serialize};

/// Tracks per-interval workload allocation deviation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviationTracker {
    expected: Vec<f64>,
    interval: f64,
    /// Start time of the current interval.
    window_start: f64,
    counts: Vec<u64>,
    total: u64,
    deviations: Vec<f64>,
}

impl DeviationTracker {
    /// Creates a tracker for the given expected fractions and interval
    /// length (seconds).
    ///
    /// # Panics
    /// Panics if `expected` is empty, if any fraction is negative, if they
    /// do not sum to ≈ 1, or if `interval ≤ 0`.
    pub fn new(expected: &[f64], interval: f64, start: f64) -> Self {
        assert!(!expected.is_empty(), "need at least one computer");
        assert!(
            expected.iter().all(|&a| a >= 0.0),
            "fractions must be non-negative"
        );
        let sum: f64 = expected.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "fractions must sum to 1, got {sum}"
        );
        assert!(interval > 0.0 && interval.is_finite(), "bad interval");
        DeviationTracker {
            expected: expected.to_vec(),
            interval,
            window_start: start,
            counts: vec![0; expected.len()],
            total: 0,
            deviations: Vec::new(),
        }
    }

    /// Records that a job was dispatched to `server` at time `now`.
    ///
    /// Closes out any intervals that ended before `now` first.
    pub fn record(&mut self, now: f64, server: usize) {
        self.advance_to(now);
        self.counts[server] += 1;
        self.total += 1;
    }

    /// Closes out intervals that end at or before `now`.
    pub fn advance_to(&mut self, now: f64) {
        while now >= self.window_start + self.interval {
            self.close_interval();
        }
    }

    fn close_interval(&mut self) {
        let dev = if self.total == 0 {
            // No arrivals in the interval: every actual fraction is 0.
            self.expected.iter().map(|a| a * a).sum()
        } else {
            let t = self.total as f64;
            self.expected
                .iter()
                .zip(&self.counts)
                .map(|(&a, &c)| {
                    let actual = c as f64 / t;
                    (a - actual) * (a - actual)
                })
                .sum()
        };
        self.deviations.push(dev);
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.window_start += self.interval;
    }

    /// Deviations of all completed intervals, in time order.
    pub fn deviations(&self) -> &[f64] {
        &self.deviations
    }

    /// Mean deviation over completed intervals (`None` if none).
    pub fn mean_deviation(&self) -> Option<f64> {
        if self.deviations.is_empty() {
            None
        } else {
            Some(self.deviations.iter().sum::<f64>() / self.deviations.len() as f64)
        }
    }

    /// Maximum deviation over completed intervals (`None` if none).
    pub fn max_deviation(&self) -> Option<f64> {
        self.deviations
            .iter()
            .copied()
            .fold(None, |acc, d| Some(acc.map_or(d, |m: f64| m.max(d))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_dispatch_has_zero_deviation() {
        // Two computers at 50/50, alternating dispatch.
        let mut t = DeviationTracker::new(&[0.5, 0.5], 10.0, 0.0);
        for i in 0..10 {
            t.record(i as f64, i % 2);
        }
        t.advance_to(10.0);
        assert_eq!(t.deviations().len(), 1);
        assert!(t.deviations()[0] < 1e-12);
    }

    #[test]
    fn one_sided_dispatch_has_max_deviation() {
        let mut t = DeviationTracker::new(&[0.5, 0.5], 10.0, 0.0);
        for i in 0..10 {
            t.record(i as f64, 0); // everything to computer 0
        }
        t.advance_to(10.0);
        // (0.5−1)² + (0.5−0)² = 0.5
        assert!((t.deviations()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_counts_full_expected_mass() {
        let mut t = DeviationTracker::new(&[0.3, 0.7], 5.0, 0.0);
        t.advance_to(5.0);
        // Σ α² = 0.09 + 0.49
        assert!((t.deviations()[0] - 0.58).abs() < 1e-12);
    }

    #[test]
    fn intervals_are_independent() {
        let mut t = DeviationTracker::new(&[0.5, 0.5], 10.0, 0.0);
        // Interval 1: perfect. Interval 2: one-sided.
        for i in 0..10 {
            t.record(i as f64, i % 2);
        }
        for i in 10..20 {
            t.record(i as f64, 0);
        }
        t.advance_to(20.0);
        assert_eq!(t.deviations().len(), 2);
        assert!(t.deviations()[0] < 1e-12);
        assert!((t.deviations()[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn late_arrival_closes_multiple_intervals() {
        let mut t = DeviationTracker::new(&[1.0, 0.0], 1.0, 0.0);
        t.record(0.5, 0);
        t.record(5.5, 0); // closes intervals [0,1), [1,2) ... [4,5)
        assert_eq!(t.deviations().len(), 5);
        assert!(t.deviations()[0] < 1e-12); // interval with the arrival
        assert!((t.deviations()[1] - 1.0).abs() < 1e-12); // empty: Σα² = 1
    }

    #[test]
    fn mean_and_max() {
        let mut t = DeviationTracker::new(&[0.5, 0.5], 10.0, 0.0);
        for i in 0..10 {
            t.record(i as f64, i % 2);
        }
        for i in 10..20 {
            t.record(i as f64, 0);
        }
        t.advance_to(20.0);
        assert!((t.mean_deviation().unwrap() - 0.25).abs() < 1e-12);
        assert!((t.max_deviation().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_completed_interval_is_none() {
        let t = DeviationTracker::new(&[1.0], 100.0, 0.0);
        assert_eq!(t.mean_deviation(), None);
        assert_eq!(t.max_deviation(), None);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_unnormalized_fractions() {
        DeviationTracker::new(&[0.5, 0.2], 1.0, 0.0);
    }

    #[test]
    fn start_offset_is_respected() {
        let mut t = DeviationTracker::new(&[1.0], 10.0, 100.0);
        t.record(105.0, 0);
        t.advance_to(110.0);
        assert_eq!(t.deviations().len(), 1);
        assert!(t.deviations()[0] < 1e-12);
    }
}

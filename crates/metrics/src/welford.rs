//! Welford's online mean/variance algorithm.
//!
//! Fairness in the paper is the standard deviation of the response ratio
//! over 1–2 million jobs per run; a naive `Σx², Σx` accumulator loses
//! precision catastrophically when the mean is large relative to the
//! spread. Welford's update is the textbook numerically stable
//! alternative, and the `merge` operation (Chan et al.) combines
//! per-replication accumulators without re-reading the data.

use serde::{Deserialize, Serialize};

/// Running count, mean and variance of a stream of observations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "observation must be finite, got {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance `m2 / n` (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance `m2 / (n − 1)`.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean `s / √n`.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_zeroed() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_error(), 0.0);
    }

    #[test]
    fn known_small_sample() {
        let w: Welford = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
        assert!((w.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let mut w = Welford::new();
        w.push(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), 3.5);
        assert_eq!(w.max(), 3.5);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.61).collect();
        let sequential: Welford = data.iter().copied().collect();
        let a: Welford = data[..400].iter().copied().collect();
        let mut b: Welford = data[400..].iter().copied().collect();
        b.merge(&a);
        assert_eq!(b.count(), sequential.count());
        assert!((b.mean() - sequential.mean()).abs() < 1e-9);
        assert!((b.variance() - sequential.variance()).abs() < 1e-9);
        assert_eq!(b.min(), sequential.min());
        assert_eq!(b.max(), sequential.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let w: Welford = [1.0, 2.0, 3.0].into_iter().collect();
        let mut a = w;
        a.merge(&Welford::new());
        assert_eq!(a, w);
        let mut e = Welford::new();
        e.merge(&w);
        assert_eq!(e, w);
    }

    #[test]
    fn numerically_stable_with_large_offset() {
        // Classic catastrophic-cancellation case: tiny variance on a huge
        // mean. The naive Σx² formula fails here.
        let offset = 1e9;
        let mut w = Welford::new();
        for i in 0..10_000 {
            w.push(offset + (i % 2) as f64);
        }
        assert!((w.variance() - 0.25).abs() < 1e-6, "var {}", w.variance());
    }

    #[test]
    fn std_error_shrinks_with_n() {
        let mut small = Welford::new();
        let mut large = Welford::new();
        for i in 0..100 {
            small.push((i % 10) as f64);
        }
        for i in 0..10_000 {
            large.push((i % 10) as f64);
        }
        assert!(large.std_error() < small.std_error());
    }

    proptest! {
        /// Mean and variance match the two-pass reference on random data.
        #[test]
        fn matches_two_pass(data in prop::collection::vec(-1e6f64..1e6, 2..200)) {
            let w: Welford = data.iter().copied().collect();
            let n = data.len() as f64;
            let mean = data.iter().sum::<f64>() / n;
            let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
            prop_assert!((w.variance() - var).abs() < 1e-5 * (1.0 + var));
        }

        /// Merging any split reproduces the sequential result.
        #[test]
        fn merge_any_split(
            data in prop::collection::vec(-1e3f64..1e3, 2..100),
            split_frac in 0.0f64..1.0,
        ) {
            let split = ((data.len() as f64) * split_frac) as usize;
            let seq: Welford = data.iter().copied().collect();
            let mut a: Welford = data[..split].iter().copied().collect();
            let b: Welford = data[split..].iter().copied().collect();
            a.merge(&b);
            prop_assert_eq!(a.count(), seq.count());
            prop_assert!((a.mean() - seq.mean()).abs() < 1e-8 * (1.0 + seq.mean().abs()));
            prop_assert!((a.variance() - seq.variance()).abs() < 1e-7 * (1.0 + seq.variance()));
        }
    }
}

//! P² streaming quantile estimation (Jain & Chlamtac, 1985).
//!
//! Tail response times (p95/p99) are the natural complement to the paper's
//! fairness metric: a scheme can have a good mean and a terrible tail.
//! The P² estimator maintains five markers and adjusts them with parabolic
//! interpolation — O(1) memory per quantile, no sample storage.

use serde::{Deserialize, Serialize};

/// Streaming estimator for a single quantile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the 0, q/2, q, (1+q)/2, 1 quantiles).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    pos: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Increments of desired positions per observation.
    incr: [f64; 5],
    /// Number of observations seen so far (before the initialization
    /// phase completes this counts into `heights` directly).
    count: usize,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile, `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1), got {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            incr: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The target quantile.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations processed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
            }
            return;
        }
        self.count += 1;

        // Find the cell containing x and clamp the extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k+1]
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for p in self.pos.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, i) in self.desired.iter_mut().zip(self.incr.iter()) {
            *d += i;
        }

        // Adjust the three interior markers if they drifted.
        for i in 1..4 {
            let d = self.desired[i] - self.pos[i];
            let right_gap = self.pos[i + 1] - self.pos[i];
            let left_gap = self.pos[i - 1] - self.pos[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, s)
                    };
                self.pos[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let n = &self.pos;
        let h = &self.heights;
        h[i] + s / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + s) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - s) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = (i as f64 + s) as usize;
        self.heights[i] + s * (self.heights[j] - self.heights[i]) / (self.pos[j] - self.pos[i])
    }

    /// Current estimate of the quantile. Before five observations have
    /// been seen this falls back to the empirical quantile of the buffer.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                let mut buf: Vec<f64> = self.heights[..n].to_vec();
                buf.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let idx = ((self.q * n as f64).ceil() as usize).clamp(1, n) - 1;
                Some(buf[idx])
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_desim::Rng64;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    }

    #[test]
    fn empty_has_no_estimate() {
        assert_eq!(P2Quantile::new(0.5).estimate(), None);
    }

    #[test]
    fn small_sample_uses_exact() {
        let mut p = P2Quantile::new(0.5);
        p.push(3.0);
        p.push(1.0);
        p.push(2.0);
        assert_eq!(p.estimate(), Some(2.0));
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut p = P2Quantile::new(0.5);
        let mut rng = Rng64::from_seed(21);
        for _ in 0..100_000 {
            p.push(rng.next_f64());
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
    }

    #[test]
    fn p99_of_exponential_stream() {
        let mut p = P2Quantile::new(0.99);
        let mut rng = Rng64::from_seed(22);
        for _ in 0..200_000 {
            p.push(rng.exponential(1.0));
        }
        // Exact p99 of Exp(1) is ln(100) ≈ 4.605.
        let est = p.estimate().unwrap();
        assert!(
            (est - 4.605).abs() / 4.605 < 0.1,
            "p99 estimate {est}, expected ≈ 4.605"
        );
    }

    #[test]
    fn tracks_exact_quantile_on_random_data() {
        let mut rng = Rng64::from_seed(23);
        let data: Vec<f64> = (0..50_000).map(|_| rng.next_f64() * 100.0).collect();
        for &q in &[0.25, 0.5, 0.75, 0.9] {
            let mut p = P2Quantile::new(q);
            for &x in &data {
                p.push(x);
            }
            let mut sorted = data.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let exact = exact_quantile(&sorted, q);
            let est = p.estimate().unwrap();
            assert!(
                (est - exact).abs() / exact.max(1.0) < 0.05,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn constant_stream_returns_constant() {
        let mut p = P2Quantile::new(0.9);
        for _ in 0..1000 {
            p.push(7.0);
        }
        assert_eq!(p.estimate(), Some(7.0));
    }

    #[test]
    fn counts_observations() {
        let mut p = P2Quantile::new(0.5);
        for i in 0..10 {
            p.push(i as f64);
        }
        assert_eq!(p.count(), 10);
        assert_eq!(p.q(), 0.5);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1)")]
    fn rejects_q_out_of_range() {
        P2Quantile::new(0.0);
    }
}

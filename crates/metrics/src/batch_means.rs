//! Batch means for steady-state simulation output.
//!
//! Within a single run, consecutive response times are strongly
//! autocorrelated (they share queueing backlogs), so the naive standard
//! error of the per-job mean is biased low. The batch-means method groups
//! the stream into `k` contiguous batches, treats batch averages as
//! approximately independent observations, and builds the confidence
//! interval from their spread. The paper sidesteps this by replicating
//! runs; we support both (replications in [`crate::summary`], batch means
//! here for single-run analyses and the convergence diagnostics used in
//! tests).

use serde::{Deserialize, Serialize};

use crate::tdist::t_quantile_975;
use crate::welford::Welford;

/// Collects a stream into fixed-size batches and reports a CI over batch
/// means.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: u64,
    current: Welford,
    batches: Vec<f64>,
}

impl BatchMeans {
    /// Creates a collector with the given batch size (observations per
    /// batch).
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current: Welford::new(),
            batches: Vec::new(),
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        if self.current.count() == self.batch_size {
            self.batches.push(self.current.mean());
            self.current = Welford::new();
        }
    }

    /// Number of completed batches.
    pub fn batch_count(&self) -> usize {
        self.batches.len()
    }

    /// Completed batch means.
    pub fn batch_means(&self) -> &[f64] {
        &self.batches
    }

    /// The grand mean over completed batches (`None` with no complete
    /// batch).
    pub fn mean(&self) -> Option<f64> {
        if self.batches.is_empty() {
            None
        } else {
            Some(self.batches.iter().sum::<f64>() / self.batches.len() as f64)
        }
    }

    /// 95% confidence half-width over batch means (`None` with fewer than
    /// two complete batches).
    pub fn ci_half_width(&self) -> Option<f64> {
        if self.batches.len() < 2 {
            return None;
        }
        let w: Welford = self.batches.iter().copied().collect();
        let t = t_quantile_975(w.count() - 1);
        Some(t * w.std_error())
    }

    /// Lag-1 autocorrelation of the batch means: close to zero indicates
    /// the batch size is large enough for the independence assumption.
    pub fn lag1_autocorrelation(&self) -> Option<f64> {
        let n = self.batches.len();
        if n < 3 {
            return None;
        }
        let mean = self.mean().expect("non-empty");
        let var: f64 = self.batches.iter().map(|b| (b - mean).powi(2)).sum();
        if var == 0.0 {
            return Some(0.0);
        }
        let cov: f64 = self
            .batches
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        Some(cov / var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_desim::Rng64;

    #[test]
    fn batches_form_at_size_boundaries() {
        let mut bm = BatchMeans::new(10);
        for i in 0..35 {
            bm.push(i as f64);
        }
        assert_eq!(bm.batch_count(), 3);
        // First batch: mean of 0..10 = 4.5.
        assert!((bm.batch_means()[0] - 4.5).abs() < 1e-12);
    }

    #[test]
    fn no_batches_no_stats() {
        let mut bm = BatchMeans::new(100);
        for i in 0..50 {
            bm.push(i as f64);
        }
        assert_eq!(bm.batch_count(), 0);
        assert_eq!(bm.mean(), None);
        assert_eq!(bm.ci_half_width(), None);
    }

    #[test]
    fn ci_covers_true_mean_of_iid_stream() {
        let mut rng = Rng64::from_seed(31);
        let mut covered = 0;
        let trials = 50;
        for _ in 0..trials {
            let mut bm = BatchMeans::new(200);
            for _ in 0..20 * 200 {
                bm.push(rng.exponential(0.5)); // mean 2.0
            }
            let m = bm.mean().unwrap();
            let hw = bm.ci_half_width().unwrap();
            if (m - 2.0).abs() <= hw {
                covered += 1;
            }
        }
        // 95% nominal coverage; allow a wide band for 50 trials.
        assert!(covered >= 40, "coverage {covered}/{trials}");
    }

    #[test]
    fn autocorrelation_near_zero_for_iid() {
        let mut rng = Rng64::from_seed(32);
        let mut bm = BatchMeans::new(100);
        for _ in 0..100 * 100 {
            bm.push(rng.next_f64());
        }
        let rho = bm.lag1_autocorrelation().unwrap();
        assert!(rho.abs() < 0.3, "iid lag-1 autocorr {rho}");
    }

    #[test]
    fn autocorrelation_detects_trend() {
        let mut bm = BatchMeans::new(10);
        for i in 0..1000 {
            bm.push(i as f64); // strong trend → batch means autocorrelated
        }
        let rho = bm.lag1_autocorrelation().unwrap();
        assert!(rho > 0.8, "trend lag-1 autocorr {rho}");
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn rejects_zero_batch() {
        BatchMeans::new(0);
    }
}

//! Log-spaced streaming histogram.
//!
//! Response times under the Bounded Pareto workload span four orders of
//! magnitude (10 s … 21600 s and beyond under queueing delay), so linear
//! bins are useless. [`Histogram`] uses geometrically spaced buckets with
//! a configurable resolution and supports approximate quantiles; errors
//! are bounded by the bucket width (a fixed *relative* error).

use serde::{Deserialize, Serialize};

/// A histogram with geometrically spaced buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Lower edge of the first regular bucket; values below land in an
    /// underflow bucket.
    lo: f64,
    /// Log of the geometric growth factor between bucket edges.
    log_growth: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with buckets whose edges
    /// grow by `growth` (> 1) per bucket; e.g. `growth = 1.1` bounds the
    /// relative quantile error by ~10%.
    ///
    /// # Panics
    /// Panics unless `0 < lo < hi` and `growth > 1`.
    pub fn new(lo: f64, hi: f64, growth: f64) -> Self {
        assert!(lo > 0.0 && lo.is_finite(), "lo must be positive, got {lo}");
        assert!(hi > lo && hi.is_finite(), "hi must exceed lo");
        assert!(growth > 1.0 && growth.is_finite(), "growth must exceed 1");
        let log_growth = growth.ln();
        let n = ((hi / lo).ln() / log_growth).ceil() as usize;
        Histogram {
            lo,
            log_growth,
            counts: vec![0; n.max(1)],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// A default layout for job response times: 1 ms … 1e7 s at 5%
    /// resolution.
    pub fn for_response_times() -> Self {
        Histogram::new(1e-3, 1e7, 1.05)
    }

    fn bucket_of(&self, x: f64) -> Option<usize> {
        if x < self.lo {
            None
        } else {
            Some(((x / self.lo).ln() / self.log_growth) as usize)
        }
    }

    /// Lower edge of bucket `i`.
    fn edge(&self, i: usize) -> f64 {
        self.lo * (self.log_growth * i as f64).exp()
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite() && x >= 0.0, "bad observation {x}");
        self.total += 1;
        match self.bucket_of(x) {
            None => self.underflow += 1,
            Some(i) if i < self.counts.len() => self.counts[i] += 1,
            Some(_) => self.overflow += 1,
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Observations below the first bucket.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations above the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate `q`-quantile (`0 < q < 1`): the geometric midpoint of
    /// the bucket containing the q-th ordered observation. Returns `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..1.0).contains(&q) && q > 0.0, "q must be in (0,1)");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut cum = self.underflow;
        if cum >= target {
            return Some(self.lo);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                // Geometric midpoint of the bucket.
                return Some((self.edge(i) * self.edge(i + 1)).sqrt());
            }
        }
        Some(self.edge(self.counts.len()))
    }

    /// Merges another histogram with an identical layout.
    ///
    /// # Panics
    /// Panics if the layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo
                && self.log_growth == other.log_growth
                && self.counts.len() == other.counts.len(),
            "histogram layouts differ"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Iterates over `(bucket_lower_edge, count)` for non-empty buckets.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.edge(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new(1.0, 1000.0, 2.0);
        h.record(1.5);
        h.record(3.0);
        h.record(500.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn underflow_and_overflow() {
        let mut h = Histogram::new(1.0, 10.0, 2.0);
        h.record(0.5);
        h.record(100.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = Histogram::new(0.1, 1e6, 1.05);
        // Deterministic geometric data: exact quantiles are known.
        let data: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        for &x in &data {
            h.record(x);
        }
        for &q in &[0.1, 0.5, 0.9, 0.99] {
            let exact = q * 10_000.0;
            let approx = h.quantile(q).unwrap();
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.06, "q={q}: approx {approx} vs exact {exact}");
        }
    }

    #[test]
    fn empty_quantile_is_none() {
        let h = Histogram::new(1.0, 10.0, 2.0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(1.0, 100.0, 2.0);
        let mut b = Histogram::new(1.0, 100.0, 2.0);
        a.record(2.0);
        b.record(2.0);
        b.record(50.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "layouts differ")]
    fn merge_rejects_mismatched_layouts() {
        let mut a = Histogram::new(1.0, 100.0, 2.0);
        let b = Histogram::new(1.0, 100.0, 1.5);
        a.merge(&b);
    }

    #[test]
    fn nonempty_buckets_enumerates() {
        let mut h = Histogram::new(1.0, 16.0, 2.0);
        h.record(1.5); // bucket [1,2)
        h.record(9.0); // bucket [8,16)
        let buckets: Vec<_> = h.nonempty_buckets().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].1, 1);
        assert!((buckets[0].0 - 1.0).abs() < 1e-9);
        assert!((buckets[1].0 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn response_time_default_covers_pareto_range() {
        let mut h = Histogram::for_response_times();
        h.record(10.0);
        h.record(21600.0);
        h.record(1e6);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.underflow(), 0);
    }

    #[test]
    #[should_panic(expected = "q must be in (0,1)")]
    fn quantile_rejects_bad_q() {
        let h = Histogram::new(1.0, 10.0, 2.0);
        let _ = h.quantile(1.0);
    }
}

//! Quickstart: schedule a small heterogeneous cluster.
//!
//! Builds a 6-machine cluster (four slow workstations, two 8× servers),
//! computes the paper's optimized workload allocation, and compares the
//! four static schemes of Table 2 by simulation.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use hetsched::prelude::*;

fn main() {
    let speeds = [1.0, 1.0, 1.0, 1.0, 8.0, 8.0];
    let rho = 0.6;

    // 1. The allocation layer is pure math — inspect it first.
    let sys = HetSystem::from_utilization(&speeds, rho).expect("valid system");
    let weighted = sys.weighted_allocation();
    let optimized = closed_form::optimized_allocation(&sys);
    println!("machine speeds:        {speeds:?}");
    println!("weighted fractions:    {:?}", round3(&weighted));
    println!("optimized fractions:   {:?}", round3(&optimized));
    println!(
        "predicted mean response ratio: weighted {:.3}, optimized {:.3}\n",
        objective::mean_response_ratio(&sys, &weighted).expect("feasible"),
        objective::mean_response_ratio(&sys, &optimized).expect("feasible"),
    );

    // 2. Simulate the four static schemes on the paper's workload
    //    (Bounded Pareto sizes, bursty hyperexponential arrivals).
    let cfg = ClusterConfig::paper_default(&speeds)
        .with_utilization(rho)
        .scaled(0.1); // 4·10⁵ simulated seconds: a few seconds of wall time
    let mut table = Table::new(["policy", "mean resp ratio", "fairness", "p95 ratio"]);
    for spec in PolicySpec::table2() {
        let mut exp = Experiment::new(spec.label(), cfg.clone(), spec);
        exp.replications = 5;
        let r = exp.run().expect("valid experiment");
        table.row([
            r.policy.clone(),
            format!("{}", r.mean_response_ratio),
            format!("{}", r.fairness),
            format!("{}", r.p95_response_ratio),
        ]);
    }
    table.print();
    println!("\nORR (optimized allocation + round-robin dispatching) should lead.");
}

fn round3(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}

//! Scenario: a batch compute cluster with retired hardware.
//!
//! A research group runs a mixed cluster: a few modern nodes and a shelf
//! of old machines nobody dares to unplug. The paper's Theorem 2 gives a
//! crisp, quantitative answer to "do the old machines still help?": below
//! a load threshold the *optimal* allocation assigns them exactly zero
//! work — their presence only hurts response time.
//!
//! This example sweeps the cluster load and prints which machines the
//! optimized allocation actually uses, then verifies by simulation that
//! honoring the cutoff beats both proportional use of everything and
//! naive equal sharing.
//!
//! Run with:
//! ```text
//! cargo run --release --example compute_cluster
//! ```

use hetsched::prelude::*;

fn main() {
    // 4 ancient nodes, 2 previous-gen, 2 modern.
    let speeds = [1.0, 1.0, 1.0, 1.0, 4.0, 4.0, 12.0, 12.0];
    let sys_at = |rho: f64| HetSystem::from_utilization(&speeds, rho).expect("valid");

    println!("cluster speeds: {speeds:?}\n");
    println!("Which machines does the optimized allocation use?");
    let mut t = Table::new(["rho", "machines used", "idle machines", "fast-node share"]);
    for rho in [0.1, 0.2, 0.3, 0.5, 0.7, 0.9] {
        let alphas = closed_form::optimized_allocation(&sys_at(rho));
        let used = alphas.iter().filter(|&&a| a > 0.0).count();
        let fast_share: f64 = alphas[6] + alphas[7];
        t.row([
            format!("{rho:.1}"),
            format!("{used}/8"),
            format!("{}", 8 - used),
            format!("{:.0}%", 100.0 * fast_share),
        ]);
    }
    t.print();

    // Simulation check at 30% load, where the old nodes should idle.
    let rho = 0.3;
    println!("\nsimulated mean response ratio at rho = {rho} (batch jobs, heavy-tailed):");
    let mut t = Table::new(["policy", "mean resp ratio", "slow-node jobs %"]);
    let specs = [
        ("ORR (optimized; old nodes idle)", PolicySpec::orr()),
        ("WRR (proportional; uses everything)", PolicySpec::wrr()),
        (
            "ERR (equal shares; speed-blind)",
            PolicySpec::Static {
                allocation: AllocationSpec::Equal,
                dispatcher: DispatcherSpec::RoundRobin,
            },
        ),
    ];
    for (label, spec) in specs {
        let cfg = ClusterConfig::paper_default(&speeds)
            .with_utilization(rho)
            .scaled(0.1);
        let mut exp = Experiment::new(label, cfg, spec);
        exp.replications = 5;
        let r = exp.run().expect("valid experiment");
        let slow_jobs: f64 = r.dispatch_fractions[..4].iter().sum();
        t.row([
            label.to_string(),
            format!("{}", r.mean_response_ratio),
            format!("{:.1}%", 100.0 * slow_jobs),
        ]);
    }
    t.print();
    println!(
        "\nAt light load the optimized scheme parks the old nodes entirely and\nstill wins — queueing on a 12x node beats running on an idle 1x node."
    );
}

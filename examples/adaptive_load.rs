//! Scenario: scheduling under drifting load with Adaptive ORR.
//!
//! The paper computes the optimized allocation from a fixed utilization
//! estimate and shows (§5.4) that underestimation at heavy load is
//! dangerous. Real systems drift: overnight lulls, daytime peaks. This
//! example runs a day-night load pattern (a slow MMPP) and compares:
//!
//! * WRR — needs no estimate, never adapts;
//! * ORR tuned for the *average* load;
//! * ORR tuned for the *peak* load (the paper's conservative advice);
//! * AORR — the extension policy that estimates the arrival rate online
//!   and re-runs Algorithm 1 periodically.
//!
//! Run with:
//! ```text
//! cargo run --release --example adaptive_load
//! ```

use hetsched::prelude::*;

fn main() {
    let speeds = [1.0, 1.0, 1.0, 1.0, 10.0, 10.0];

    // Day-night pattern: calm half the time, 3× busier the other half,
    // ~2-hour cycles. Overall utilization 0.55 — peaks near 0.85.
    let arrivals = ArrivalSpec::Mmpp {
        burst_factor: 3.0,
        frac_bursty: 0.5,
        cycle: 7200.0,
    };
    let avg_rho = 0.55;
    let peak_rho = 0.55 * 2.0 * 3.0 / (1.0 + 3.0); // bursty-state utilization

    println!("day/night workload: average rho {avg_rho}, bursty-phase rho {peak_rho:.2}\n");

    let policies: Vec<(String, PolicySpec)> = vec![
        ("WRR (no estimate)".into(), PolicySpec::wrr()),
        ("ORR @ average rho".into(), PolicySpec::orr()),
        (
            format!("ORR @ peak (+{:.0}%)", 100.0 * (peak_rho / avg_rho - 1.0)),
            PolicySpec::orr_with_error(peak_rho / avg_rho - 1.0),
        ),
        (
            "AORR (online estimate)".into(),
            PolicySpec::AdaptiveOrr {
                recompute_every: 600.0,
                safety_margin: 0.05,
            },
        ),
    ];

    let mut t = Table::new(["policy", "mean resp ratio", "fairness", "p95 ratio"]);
    for (label, spec) in policies {
        let mut cfg = ClusterConfig::paper_default(&speeds)
            .with_utilization(avg_rho)
            .scaled(0.25);
        cfg.arrivals = arrivals;
        let mut exp = Experiment::new(label.clone(), cfg, spec);
        exp.replications = 5;
        let r = exp.run().expect("valid experiment");
        t.row([
            label,
            format!("{}", r.mean_response_ratio),
            format!("{}", r.fairness),
            format!("{}", r.p95_response_ratio),
        ]);
    }
    t.print();
    println!(
        "\nTuning ORR for the average load risks the §5.4 underestimation\nfailure during the busy phase; tuning for the peak gives up some of the\nquiet-phase gain. AORR re-estimates the load as it shifts and should\nsit at or below the better of the two fixed tunings."
    );
}

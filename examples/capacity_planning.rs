//! Scenario: capacity planning with the analytic layer alone.
//!
//! The optimized allocation needs only machine speeds and a utilization
//! estimate (paper §2.3), so latency targets can be checked *before*
//! deploying anything. This example answers a planning question
//! analytically — "how much traffic can this fleet absorb while keeping
//! the mean response ratio under 2?" — and then validates the analytic
//! frontier against the simulator at a few points.
//!
//! Run with:
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use hetsched::prelude::*;
use hetsched::queueing::AllocationReport;

fn main() {
    let speeds = [2.0, 2.0, 4.0, 6.0, 10.0];
    let target_ratio = 2.0;

    // Analytic frontier: predicted mean response ratio vs utilization,
    // optimized and weighted.
    println!("fleet speeds {speeds:?}; target mean response ratio {target_ratio}\n");
    let mut t = Table::new([
        "rho",
        "optimized R",
        "weighted R",
        "slowest-pair share (opt)",
    ]);
    let mut max_rho_ok = 0.0;
    for i in 1..20 {
        let rho = i as f64 / 20.0;
        let sys = HetSystem::from_utilization(&speeds, rho).expect("valid");
        let opt = closed_form::optimized_allocation(&sys);
        let r_opt = objective::mean_response_ratio(&sys, &opt).expect("feasible");
        let r_w =
            objective::mean_response_ratio(&sys, &sys.weighted_allocation()).expect("feasible");
        if r_opt <= target_ratio {
            max_rho_ok = rho;
        }
        if i % 2 == 0 {
            t.row([
                format!("{rho:.2}"),
                format!("{r_opt:.3}"),
                format!("{r_w:.3}"),
                format!("{:.0}%", 100.0 * (opt[0] + opt[1])),
            ]);
        }
    }
    t.print();
    println!(
        "\nanalytic answer: the fleet holds mean response ratio <= {target_ratio}\nup to rho = {max_rho_ok:.2} under the optimized allocation.\n"
    );

    // Detail view at the operating point, then simulate to validate.
    let rho = max_rho_ok;
    let sys = HetSystem::from_utilization(&speeds, rho).expect("valid");
    let alphas = closed_form::optimized_allocation(&sys);
    let report = AllocationReport::build(&sys, &alphas).expect("feasible");
    let mut t = Table::new(["machine", "speed", "alpha", "utilization", "pred. ratio"]);
    for (i, m) in report.machines.iter().enumerate() {
        t.row([
            format!("{i}"),
            format!("{}", m.speed),
            format!("{:.3}", m.alpha),
            format!("{:.2}", m.utilization),
            format!("{:.3}", m.mean_response_ratio),
        ]);
    }
    t.print();

    // The analysis assumes M/M/1; validate under Poisson/exponential
    // traffic where it should be exact, and under the paper's bursty
    // heavy-tailed workload where PS insensitivity keeps the mean close.
    println!(
        "\nvalidation at rho = {rho:.2} (predicted {:.3}):",
        report.mean_response_ratio
    );
    for (label, sizes, arrivals) in [
        (
            "Poisson + exponential (model exact)",
            DistSpec::Exponential { mean: 76.8 },
            ArrivalSpec::Poisson,
        ),
        (
            "paper workload (BP sizes, CV-3 arrivals)",
            DistSpec::paper_job_sizes(),
            ArrivalSpec::paper_default(),
        ),
    ] {
        let mut cfg = ClusterConfig::paper_default(&speeds)
            .with_utilization(rho)
            .scaled(0.25);
        cfg.job_sizes = sizes;
        cfg.arrivals = arrivals;
        let mut exp = Experiment::new(label, cfg, PolicySpec::oran());
        exp.replications = 5;
        let r = exp.run().expect("valid experiment");
        println!("  {label}: simulated {}", r.mean_response_ratio);
    }
    println!(
        "\nThe Poisson/exponential run should match the prediction tightly; the\nbursty run sits somewhat higher at the same mean load (burstiness is\nnot in the M/M/1 model), which is why the paper recommends a slightly\nconservative utilization estimate."
    );
}

//! Scenario: a heterogeneous web-server farm behind a DNS scheduler.
//!
//! The paper's introduction points at exactly this deployment: "Existing
//! work on domain name server (DNS) scheduling and HTTP request
//! distribution employed simple weighted workload allocation for
//! heterogeneous servers. The performance can be further improved with
//! our proposed optimization techniques."
//!
//! We model a farm of three server generations (old 1×, mid 3×, new 8×)
//! serving heavy-tailed HTTP responses, and compare the industry-default
//! weighted random (what DNS round-robin with weights approximates) with
//! the paper's ORR at several traffic levels.
//!
//! Run with:
//! ```text
//! cargo run --release --example web_server_farm
//! ```

use hetsched::prelude::*;

fn main() {
    // 2 legacy boxes, 3 mid-tier, 1 new flagship.
    let speeds = [1.0, 1.0, 3.0, 3.0, 3.0, 8.0];

    // Request service demands: heavy-tailed, mean ≈ 0.46 s on the 1×
    // box (mostly small pages, occasional huge downloads).
    let request_sizes = DistSpec::BoundedPareto {
        k: 0.05,
        p: 300.0,
        alpha: 1.1,
    };

    println!("web farm: speeds {speeds:?}");
    println!("request sizes: Bounded Pareto, mean {:.3} s (speed-1)\n", {
        use hetsched::dist::Moments;
        request_sizes.build().mean()
    });

    let mut table = Table::new([
        "traffic",
        "policy",
        "mean resp ratio",
        "p95 ratio",
        "fairness",
    ]);
    for (label, rho) in [
        ("off-peak (30%)", 0.3),
        ("busy (60%)", 0.6),
        ("rush (85%)", 0.85),
    ] {
        for spec in [PolicySpec::wran(), PolicySpec::orr()] {
            let mut cfg = ClusterConfig::paper_default(&speeds).with_utilization(rho);
            cfg.job_sizes = request_sizes;
            // Short requests → plenty of samples in a short horizon.
            cfg.horizon = 40_000.0;
            cfg.warmup = 10_000.0;
            let mut exp = Experiment::new(format!("{label} {}", spec.label()), cfg, spec);
            exp.replications = 5;
            let r = exp.run().expect("valid experiment");
            table.row([
                label.to_string(),
                r.policy.clone(),
                format!("{}", r.mean_response_ratio),
                format!("{}", r.p95_response_ratio),
                format!("{}", r.fairness),
            ]);
        }
    }
    table.print();
    println!(
        "\nORR keeps latency ratios lower and steadier than weighted random at\nevery traffic level — with zero extra runtime information: the DNS tier\nonly needs server speeds and a coarse utilization estimate."
    );
}

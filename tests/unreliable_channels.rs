//! Contracts of the unreliable-messaging layer, checked at the public
//! `Experiment` front-end.
//!
//! Two load-bearing guarantees:
//!
//! * **Reliable is invisible.** `channels: Some(ChannelSpec::reliable())`
//!   is bit-identical to `channels: None` — the channel layer must be
//!   structurally absent when every knob is zero, not merely "lossless
//!   with extra RNG draws". Checked on both event-list backends, with
//!   and without fault injection, through both engines (classic
//!   `sim_threads = 0` and the conservative parallel engine at
//!   `sim_threads = 4`).
//! * **Jobs are conserved.** Under any combination of loss, retry,
//!   hedging, per-plane loss, and partition windows, every counted job
//!   is finished, lost, or still in flight at the horizon:
//!   `jobs_counted == jobs_finished + jobs_lost + jobs_in_flight`.
//!   Checked as a property over many seeds and channel shapes.

use hetsched::prelude::*;

/// A small, statistically alive 8-computer system; four dispatch shards
/// so the parallel engine has real work to partition.
fn base_cfg(shards: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0, 4.0, 8.0, 1.0, 2.0, 4.0, 8.0]);
    cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
    cfg.horizon = 15_000.0;
    cfg.warmup = 1_500.0;
    if shards > 1 {
        cfg.dispatch = DispatchSpec::sharded(shards, SplitterSpec::IidRandom);
    }
    cfg
}

fn experiment(cfg: ClusterConfig, sim_threads: usize) -> Experiment {
    let mut e = Experiment::new("channels", cfg, PolicySpec::orr());
    e.replications = 2;
    e.sim_threads = sim_threads;
    e
}

/// `ChannelSpec::reliable()` reproduces the no-channels run bit for bit
/// across {heap, calendar} × faults {off, on} × engines
/// {classic, parallel×4}.
#[test]
fn reliable_channels_are_bit_identical_to_none() {
    for backend in [EventListBackend::Heap, EventListBackend::Calendar] {
        for faults in [false, true] {
            for sim_threads in [0usize, 4] {
                let shards = if sim_threads > 0 { 4 } else { 1 };
                let mut plain = base_cfg(shards);
                plain.event_list = backend;
                if faults {
                    plain.faults = Some(
                        FaultSpec::exponential(3_000.0, 300.0)
                            .with_semantics(JobFaultSemantics::Resubmit),
                    );
                }
                let mut with_channels = plain.clone();
                with_channels.channels = Some(ChannelSpec::reliable());

                let baseline = experiment(plain, sim_threads);
                let observed = experiment(with_channels, sim_threads);
                for rep in 0..baseline.replications {
                    let a = baseline.run_single(rep).expect("baseline runs");
                    let b = observed.run_single(rep).expect("channelled runs");
                    assert_eq!(
                        a, b,
                        "reliable channels perturbed a run (backend={backend:?}, \
                         faults={faults}, sim_threads={sim_threads}, rep={rep})"
                    );
                }
            }
        }
    }
}

/// The channel shapes the conservation property sweeps: every recovery
/// tier plus per-plane asymmetries and a partition window.
fn channel_shapes() -> Vec<(&'static str, ChannelSpec)> {
    let blackout = {
        let mut c = ChannelSpec::reliable();
        c.load.partitions = vec![(4_000.0, 8_000.0)];
        c.dispatch.loss = 0.02;
        c
    };
    let skewed = {
        let mut c = ChannelSpec::reliable();
        c.dispatch.loss = 0.05;
        c.dispatch.duplicate = 0.02;
        c.dispatch.jitter = 2.0;
        c.load.loss = 0.20;
        c.sync.loss = 0.10;
        c
    };
    vec![
        ("fire-and-forget loss", ChannelSpec::uniform_loss(0.05)),
        (
            "loss + retry",
            ChannelSpec::uniform_loss(0.05).with_retry(RetrySpec::after(30.0)),
        ),
        (
            "loss + retry + hedge",
            ChannelSpec::uniform_loss(0.05)
                .with_retry(RetrySpec::after(30.0))
                .with_hedge(HedgeSpec { delay: 5.0 }),
        ),
        ("skewed planes", skewed.with_retry(RetrySpec::after(20.0))),
        ("load blackout", blackout),
    ]
}

/// Property: over many seeds and every channel shape, on both engines,
/// `jobs_counted == jobs_finished + jobs_lost + jobs_in_flight`.
#[test]
fn conservation_law_holds_across_seeds_and_channel_shapes() {
    for (label, spec) in channel_shapes() {
        for sim_threads in [0usize, 4] {
            let shards = if sim_threads > 0 { 4 } else { 1 };
            let mut cfg = base_cfg(shards);
            cfg.channels = Some(spec.clone());
            let mut exp = experiment(cfg, sim_threads);
            exp.replications = 10;
            for rep in 0..exp.replications {
                let r = exp.run_single(rep).expect("channelled run");
                assert_eq!(
                    r.jobs_counted,
                    r.jobs_finished + r.jobs_lost + r.jobs_in_flight,
                    "conservation broke ({label}, sim_threads={sim_threads}, rep={rep}): \
                     counted {} != finished {} + lost {} + in-flight {}",
                    r.jobs_counted,
                    r.jobs_finished,
                    r.jobs_lost,
                    r.jobs_in_flight
                );
                assert!(r.jobs_counted > 0, "{label}: grid point simulated nothing");
                if label != "load blackout" {
                    assert!(
                        r.msgs_lost > 0,
                        "{label}: loss knob never fired (seed {rep})"
                    );
                }
            }
        }
    }
}

/// Recovery actually recovers: with retry configured, dispatch-plane
/// loss costs latency instead of jobs, and hedging burns duplicates to
/// win races. The lost jobs reappear as retries/timeouts in the
/// counters — nothing vanishes silently.
#[test]
fn retry_and_hedging_trade_loss_for_latency() {
    let mut lossy = base_cfg(1);
    lossy.channels = Some(ChannelSpec::uniform_loss(0.05));
    let mut retry = base_cfg(1);
    retry.channels = Some(ChannelSpec::uniform_loss(0.05).with_retry(RetrySpec::after(30.0)));
    let mut hedged = base_cfg(1);
    hedged.channels = Some(
        ChannelSpec::uniform_loss(0.05)
            .with_retry(RetrySpec::after(30.0))
            .with_hedge(HedgeSpec { delay: 5.0 }),
    );

    let ff = experiment(lossy, 0).run_single(0).expect("fire-and-forget");
    let re = experiment(retry, 0).run_single(0).expect("retry");
    let he = experiment(hedged, 0).run_single(0).expect("hedged");

    assert!(ff.jobs_lost > 0, "5% loss never dropped a job");
    assert_eq!(ff.retries, 0);
    assert!(
        re.jobs_lost < ff.jobs_lost,
        "retry did not reduce job loss ({} vs {})",
        re.jobs_lost,
        ff.jobs_lost
    );
    assert!(re.retries > 0 && re.timeouts > 0);
    assert!(he.hedges_won > 0, "hedging never won a race");
    assert!(
        he.jobs_lost <= re.jobs_lost,
        "hedging increased job loss ({} vs {})",
        he.jobs_lost,
        re.jobs_lost
    );
}

/// A load-plane blackout degrades the naive dynamic policy's
/// information but is survivable: the staleness-aware variant counts
/// its decisions on stale data, and both conserve jobs.
#[test]
fn stale_aware_policy_counts_decisions_under_blackout() {
    let mut cfg = base_cfg(1);
    let mut spec = ChannelSpec::reliable();
    spec.load.partitions = vec![(3_000.0, 15_000.0)];
    cfg.channels = Some(spec);

    let mut exp = Experiment::new("blackout", cfg, PolicySpec::stale_aware_dynamic(30.0));
    exp.replications = 2;
    let r = exp.run_single(0).expect("stale-aware run");
    assert!(
        r.stale_decisions > 0,
        "a 12 000 s load blackout produced no stale decisions"
    );
    assert_eq!(
        r.jobs_counted,
        r.jobs_finished + r.jobs_lost + r.jobs_in_flight
    );
}

//! Property-based oracle for the P² streaming quantile estimator.
//!
//! The estimator keeps five markers instead of the sample, so it cannot
//! be exact — but it must stay close to the exact sorted-sample quantile
//! *in rank space*: the fraction of observations at or below the
//! estimate must be near the target `q`. Rank space is the right oracle
//! for heavy-tailed inputs, where a tiny rank error can be a large value
//! error (and vice versa) without the estimator being wrong in any
//! useful sense.
//!
//! Inputs mirror the simulation's workloads: exponential response
//! times, Bounded-Pareto job sizes (the paper's heavy tail), and
//! adversarial deterministic streams (duplicates, constants, tiny n).

use hetsched::desim::Rng64;
use hetsched::metrics::P2Quantile;
use proptest::prelude::*;

/// Exact `q`-quantile by the ceil-rank convention — the same convention
/// `P2Quantile::estimate` uses for its small-sample fallback.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Feeds `data` through a fresh estimator.
fn estimate(data: &[f64], q: f64) -> f64 {
    let mut p = P2Quantile::new(q);
    for &x in data {
        p.push(x);
    }
    p.estimate().expect("non-empty stream has an estimate")
}

/// The empirical rank of `value` within `data`: P[x ≤ value].
fn rank_of(data: &[f64], value: f64) -> f64 {
    data.iter().filter(|&&x| x <= value).count() as f64 / data.len() as f64
}

/// The empirical rank *interval* covered by a small value-neighborhood
/// of `value`: `[P(x ≤ value − ε), P(x ≤ value + ε)]`.
///
/// On atomic streams the CDF jumps: with mass 1/8 on each of {0..7},
/// every rank in (0.875, 1.0) is unreachable, so the point rank of any
/// estimate near the top atom is 0.875 or 1.0 — never 0.95. The P²
/// markers converge onto the atom up to parabolic-interpolation noise,
/// so the right oracle asks whether the estimate's neighborhood spans
/// the target rank, not whether its point rank equals it.
fn rank_interval_of(data: &[f64], value: f64) -> (f64, f64) {
    let eps = 1e-3 * (1.0 + value.abs());
    (rank_of(data, value - eps), rank_of(data, value + eps))
}

/// Inverse CDF of the paper's Bounded Pareto BP(k, p, α):
/// `F⁻¹(u) = (k^-α − u(k^-α − p^-α))^(−1/α)`.
fn bounded_pareto(u: f64, k: f64, p: f64, alpha: f64) -> f64 {
    (k.powf(-alpha) - u * (k.powf(-alpha) - p.powf(-alpha))).powf(-1.0 / alpha)
}

fn sample(seed: u64, n: usize, dist: u8) -> Vec<f64> {
    let mut rng = Rng64::from_seed(seed);
    (0..n)
        .map(|_| match dist % 3 {
            0 => rng.exponential(0.1),
            1 => bounded_pareto(rng.next_f64_open(), 512.0, 1.0e7, 1.1),
            // Heavily quantized: long runs of exact duplicates.
            _ => (rng.next_f64() * 8.0).floor(),
        })
        .collect()
}

proptest! {
    /// On streams of ≥ 2000 observations from any of the workload
    /// shapes, the rank interval covered by the P² estimate's value
    /// neighborhood comes within 0.04 of the target quantile, for every
    /// quantile the simulation actually tracks. (The interval form is
    /// what makes the oracle sound on quantized streams, where target
    /// ranks inside a CDF jump are unreachable by any point estimate.)
    #[test]
    fn estimate_is_rank_accurate(
        seed in any::<u64>(),
        n in 2000usize..4000,
        dist in 0u8..3,
        q_idx in 0usize..5,
    ) {
        let q = [0.25, 0.5, 0.75, 0.9, 0.95][q_idx];
        let data = sample(seed, n, dist);
        let est = estimate(&data, q);
        let (lo, hi) = rank_interval_of(&data, est);
        prop_assert!(
            lo - 0.04 <= q && q <= hi + 0.04,
            "dist {dist}, q={q}: estimate {est} covers ranks [{lo}, {hi}]"
        );
    }

    /// Below five observations the estimator is *exact*: it stores the
    /// whole sample and answers with the ceil-rank order statistic.
    #[test]
    fn fewer_than_five_observations_match_the_exact_oracle(
        data in prop::collection::vec(-1.0e6f64..1.0e6, 1..5),
        q_idx in 0usize..5,
    ) {
        let q = [0.25, 0.5, 0.75, 0.9, 0.95][q_idx];
        let est = estimate(&data, q);
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        prop_assert_eq!(est, exact_quantile(&sorted, q));
    }

    /// A constant stream of any length estimates the constant exactly,
    /// at any quantile.
    #[test]
    fn constant_streams_are_exact(
        value in -1.0e9f64..1.0e9,
        n in 1usize..2000,
        q in 0.01f64..0.99,
    ) {
        let data = vec![value; n];
        prop_assert_eq!(estimate(&data, q), value);
    }

    /// The estimate is always bracketed by the sample extremes — the P²
    /// marker invariant heights[0] ≤ estimate ≤ heights[4].
    #[test]
    fn estimate_stays_within_the_sample_range(
        seed in any::<u64>(),
        n in 1usize..500,
        dist in 0u8..3,
        q in 0.01f64..0.99,
    ) {
        let data = sample(seed, n, dist);
        let est = estimate(&data, q);
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo <= est && est <= hi, "estimate {est} outside [{lo}, {hi}]");
    }
}

#[test]
fn exponential_tail_quantiles_match_the_analytic_values() {
    // Exp(rate=0.1): F⁻¹(q) = −ln(1−q)/0.1.
    let mut rng = Rng64::from_seed(97);
    let mut p95 = P2Quantile::new(0.95);
    let mut p99 = P2Quantile::new(0.99);
    for _ in 0..300_000 {
        let x = rng.exponential(0.1);
        p95.push(x);
        p99.push(x);
    }
    let exact95 = -(1.0f64 - 0.95).ln() / 0.1;
    let exact99 = -(1.0f64 - 0.99).ln() / 0.1;
    let est95 = p95.estimate().unwrap();
    let est99 = p99.estimate().unwrap();
    assert!(
        (est95 - exact95).abs() / exact95 < 0.05,
        "p95 {est95} vs {exact95}"
    );
    assert!(
        (est99 - exact99).abs() / exact99 < 0.08,
        "p99 {est99} vs {exact99}"
    );
}

#[test]
fn bounded_pareto_median_matches_the_inverse_cdf() {
    // The heavy tail must not wreck the central quantile.
    let mut rng = Rng64::from_seed(98);
    let mut p = P2Quantile::new(0.5);
    let data: Vec<f64> = (0..100_000)
        .map(|_| bounded_pareto(rng.next_f64_open(), 512.0, 1.0e7, 1.1))
        .collect();
    for &x in &data {
        p.push(x);
    }
    let exact = bounded_pareto(0.5, 512.0, 1.0e7, 1.1);
    let est = p.estimate().unwrap();
    assert!(
        (est - exact).abs() / exact < 0.05,
        "BP median {est} vs analytic {exact}"
    );
}

#[test]
fn duplicate_heavy_streams_stay_rank_accurate() {
    // 90% of the mass at exactly 1.0 — the central markers collapse onto
    // the atom (up to parabolic-interpolation float noise) and the tail
    // marker climbs to the second atom at 10.0.
    let mut rng = Rng64::from_seed(99);
    let data: Vec<f64> = (0..50_000)
        .map(|_| if rng.chance(0.9) { 1.0 } else { 10.0 })
        .collect();
    for q in [0.25, 0.5, 0.75] {
        let est = estimate(&data, q);
        assert!(
            (est - 1.0).abs() < 1e-6,
            "q={q} must converge onto the atom, got {est}"
        );
    }
    let est = estimate(&data, 0.99);
    assert!(
        (est - 10.0).abs() < 1e-6,
        "p99 must converge onto the tail atom, got {est}"
    );
}

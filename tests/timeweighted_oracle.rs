//! Property-based oracle for the time-weighted integrator.
//!
//! `TimeWeighted` integrates a piecewise-constant signal; the oracle
//! below replays the same segments with the same left-to-right
//! accumulation, so every comparison is *exact* (`assert_eq!` on f64),
//! not approximate — any drift in the integrator's arithmetic is a bug,
//! because the observability layer relies on `integral_at` reproducing
//! the finalized integrals bit for bit.

use hetsched::metrics::TimeWeighted;
use proptest::prelude::*;

/// One signal change: hold the previous value for `dt`, then switch.
#[derive(Debug, Clone, Copy)]
struct Step {
    dt: f64,
    value: f64,
}

/// Decodes raw `(selector, dt, value)` triples into steps. Selector 0
/// forces a zero-length hold (1 in 4): simultaneous events are everyday
/// business in a discrete-event simulation, so the oracle must cover
/// zero-width segments as a common case, not a corner.
fn decode_steps(raw: &[(u8, f64, f64)]) -> Vec<Step> {
    raw.iter()
        .map(|&(sel, dt, value)| Step {
            dt: if sel % 4 == 0 { 0.0 } else { dt },
            value,
        })
        .collect()
}

/// Replays `steps` on a tracker and, in lockstep, on a plain fold that
/// accumulates `value · Δt` exactly the way the tracker claims to.
/// Returns `(tracker, oracle_integral, oracle_peak, final_time)`.
fn replay(start: f64, initial: f64, steps: &[Step]) -> (TimeWeighted, f64, f64, f64) {
    let mut tw = TimeWeighted::new(start, initial);
    let mut t = start;
    let mut value = initial;
    let mut integral = 0.0;
    let mut peak = initial;
    for s in steps {
        let next = t + s.dt;
        tw.update(next, s.value);
        integral += value * (next - t);
        t = next;
        value = s.value;
        peak = peak.max(s.value);
    }
    (tw, integral, peak, t)
}

proptest! {
    /// The integral, peak, value, and time-average all match the oracle
    /// exactly after any update sequence.
    #[test]
    fn integral_matches_the_piecewise_oracle(
        start in -1000.0f64..1000.0,
        initial in -100.0f64..100.0,
        raw in prop::collection::vec((any::<u8>(), 0.0f64..50.0, -100.0f64..100.0), 0..40),
    ) {
        let steps = decode_steps(&raw);
        let (tw, integral, peak, t) = replay(start, initial, &steps);
        prop_assert_eq!(tw.integral(), integral);
        prop_assert_eq!(tw.peak(), peak);
        if let Some(last) = steps.last() {
            prop_assert_eq!(tw.value(), last.value);
        }
        let elapsed = t - start;
        if elapsed > 0.0 {
            prop_assert_eq!(tw.time_average(), integral / elapsed);
        } else {
            prop_assert_eq!(tw.time_average(), 0.0);
        }
    }

    /// `integral_at` is a pure read: it equals accrued-plus-extension,
    /// never mutates, and agrees with actually advancing the tracker.
    #[test]
    fn integral_at_agrees_with_a_real_advance(
        initial in -100.0f64..100.0,
        raw in prop::collection::vec((any::<u8>(), 0.0f64..50.0, -100.0f64..100.0), 0..40),
        extra in 0.0f64..50.0,
    ) {
        let steps = decode_steps(&raw);
        let (tw, integral, _, t) = replay(0.0, initial, &steps);
        let horizon = t + extra;
        let expected = integral + tw.value() * (horizon - t);
        prop_assert_eq!(tw.integral_at(horizon), expected);
        // Reading twice gives the same answer (no hidden accrual) …
        prop_assert_eq!(tw.integral_at(horizon), expected);
        prop_assert_eq!(tw.integral(), integral);
        // … and a genuine touch lands on exactly the value read.
        let mut advanced = tw;
        advanced.touch(horizon);
        prop_assert_eq!(advanced.integral(), expected);
    }

    /// `touch` at the current instant is a no-op on every statistic.
    #[test]
    fn zero_length_touch_changes_nothing(
        initial in -100.0f64..100.0,
        raw in prop::collection::vec((any::<u8>(), 0.0f64..50.0, -100.0f64..100.0), 0..40),
    ) {
        let steps = decode_steps(&raw);
        let (tw, _, _, t) = replay(0.0, initial, &steps);
        let mut touched = tw;
        touched.touch(t);
        prop_assert_eq!(touched, tw);
    }

    /// `reset_window` restarts the oracle from the reset point: replaying
    /// the tail alone (with the value live at the reset) reproduces the
    /// post-reset tracker exactly. This is the warmup-end semantics the
    /// simulation depends on.
    #[test]
    fn reset_window_equals_a_fresh_tracker_from_the_tail(
        initial in -100.0f64..100.0,
        raw in prop::collection::vec((any::<u8>(), 0.0f64..50.0, -100.0f64..100.0), 0..40),
        cut in 0usize..40,
    ) {
        let steps = decode_steps(&raw);
        let cut = cut.min(steps.len());
        let (mut tw, _, _, t) = replay(0.0, initial, &steps[..cut]);
        tw.reset_window(t);
        let live = tw.value();
        let mut now = t;
        for s in &steps[cut..] {
            now += s.dt;
            tw.update(now, s.value);
        }
        // Rebuild the same tail on a fresh tracker started at the cut.
        let (fresh, integral, peak, _) = replay(t, live, &steps[cut..]);
        prop_assert_eq!(tw.integral(), integral);
        prop_assert_eq!(tw.peak(), peak);
        prop_assert_eq!(tw.value(), fresh.value());
        prop_assert_eq!(tw.time_average(), fresh.time_average());
    }
}

#[test]
fn backwards_time_is_rejected_everywhere() {
    let mut tw = TimeWeighted::new(0.0, 1.0);
    tw.update(5.0, 2.0);
    for f in [
        (|tw: &mut TimeWeighted| tw.update(4.9, 0.0)) as fn(&mut TimeWeighted),
        |tw: &mut TimeWeighted| tw.touch(4.9),
        |tw: &mut TimeWeighted| {
            tw.integral_at(4.9);
        },
        |tw: &mut TimeWeighted| tw.reset_window(4.9),
    ] {
        let mut clone = tw;
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut clone)));
        assert!(err.is_err(), "backwards time must panic");
    }
}

#[test]
fn final_interval_flush_closes_the_run_integral() {
    // The simulation's finalize path: irregular updates, then one touch
    // at the horizon. The closed integral equals the windowed reads the
    // obs layer made along the way plus the remainder.
    let mut tw = TimeWeighted::new(0.0, 1.0);
    tw.update(130.0, 0.0);
    tw.update(250.0, 1.0);
    let at_window = tw.integral_at(360.0); // obs boundary read
    tw.update(470.0, 0.0);
    tw.touch(500.0); // horizon flush
    assert_eq!(at_window, 130.0 + 110.0);
    assert_eq!(tw.integral(), 130.0 + 220.0);
    assert_eq!(tw.time_average(), 350.0 / 500.0);
}

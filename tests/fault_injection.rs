//! Cross-crate contracts of the fault-injection layer.
//!
//! * a faulted sweep is bit-identical at any thread count;
//! * a config JSON without a `faults` key deserializes to `faults: None`
//!   and reproduces the pre-fault results exactly;
//! * an actively faulted run reports crashes, lost jobs, downtime, and
//!   sub-unit availability;
//! * the resubmit/restart semantics keep jobs instead of losing them;
//! * the re-optimizing policy runs under faults and loses no more jobs
//!   than static ORR loses.

use hetsched::prelude::*;

/// A small faulted system: crashes are frequent enough to be seen in a
/// short horizon but the system stays mostly up.
fn faulted_cfg(on_crash: JobFaultSemantics) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0, 4.0]);
    cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
    cfg.horizon = 40_000.0;
    cfg.warmup = 4_000.0;
    cfg.faults = Some(FaultSpec::exponential(3_000.0, 300.0).with_semantics(on_crash));
    cfg
}

fn faulted_experiment(policy: PolicySpec, on_crash: JobFaultSemantics) -> Experiment {
    let mut e = Experiment::new(
        format!("faulted {}", policy.label()),
        faulted_cfg(on_crash),
        policy,
    );
    e.replications = 3;
    e
}

#[test]
fn faulted_sweep_bit_identical_across_thread_counts() {
    let points = || {
        vec![
            faulted_experiment(PolicySpec::orr(), JobFaultSemantics::Lost),
            faulted_experiment(PolicySpec::reopt_orr(), JobFaultSemantics::Resubmit),
            faulted_experiment(PolicySpec::DynamicLeastLoad, JobFaultSemantics::Restart),
        ]
    };
    let one = Sweep::new(points()).with_threads(1).run().expect("runs");
    let eight = Sweep::new(points()).with_threads(8).run().expect("runs");
    assert_eq!(one.results, eight.results);
}

#[test]
fn config_without_faults_key_reproduces_fault_free_results() {
    let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0, 4.0]);
    cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
    cfg.horizon = 40_000.0;
    cfg.warmup = 4_000.0;

    // Strip the `faults` key from the serialized form — a pre-fault-layer
    // archive — and check it loads as `None` and runs identically.
    let mut json = serde_json::to_value(&cfg).expect("serializes");
    assert!(json
        .as_object_mut()
        .expect("object")
        .remove("faults")
        .is_some());
    let legacy: ClusterConfig = serde_json::from_value(json).expect("legacy deserializes");
    assert!(legacy.faults.is_none());

    let mut a = Experiment::new("explicit-none", cfg, PolicySpec::orr());
    a.replications = 2;
    let mut b = Experiment::new("explicit-none", legacy, PolicySpec::orr());
    b.replications = 2;
    let ra = a.run().expect("runs");
    let rb = b.run().expect("runs");
    assert_eq!(ra, rb);
    for run in &ra.runs {
        assert_eq!(run.crashes, 0);
        assert_eq!(run.jobs_lost, 0);
        assert_eq!(run.availability, 1.0);
        assert!(run.servers.iter().all(|s| s.downtime == 0.0));
    }
}

#[test]
fn faulted_run_reports_churn() {
    let result = faulted_experiment(PolicySpec::orr(), JobFaultSemantics::Lost)
        .run()
        .expect("runs");
    let crashes: u64 = result.runs.iter().map(|r| r.crashes).sum();
    let lost: u64 = result.runs.iter().map(|r| r.jobs_lost).sum();
    assert!(crashes > 0, "MTBF 3000 over 36k-second window must crash");
    assert!(lost > 0, "lost semantics with crashes must lose jobs");
    for run in &result.runs {
        assert!(
            run.availability < 1.0 && run.availability > 0.5,
            "availability {}",
            run.availability
        );
        assert!(run.servers.iter().map(|s| s.downtime).sum::<f64>() > 0.0);
        assert_eq!(run.jobs_resubmitted, 0);
        assert_eq!(run.jobs_restarted, 0);
    }
}

#[test]
fn resubmit_and_restart_keep_in_flight_jobs() {
    let resub = faulted_experiment(PolicySpec::orr(), JobFaultSemantics::Resubmit)
        .run()
        .expect("runs");
    assert!(
        resub.runs.iter().map(|r| r.jobs_resubmitted).sum::<u64>() > 0,
        "crashes must bounce in-flight jobs back through the dispatcher"
    );
    let restart = faulted_experiment(PolicySpec::orr(), JobFaultSemantics::Restart)
        .run()
        .expect("runs");
    assert!(
        restart.runs.iter().map(|r| r.jobs_restarted).sum::<u64>() > 0,
        "repairs must restart parked jobs"
    );
    // Both keep the churned jobs countable as degraded.
    for result in [&resub, &restart] {
        assert!(result.runs.iter().map(|r| r.degraded_jobs).sum::<u64>() > 0);
    }
}

#[test]
fn reoptimizing_orr_runs_under_faults() {
    let reorr = faulted_experiment(PolicySpec::reopt_orr(), JobFaultSemantics::Lost)
        .run()
        .expect("runs");
    let orr = faulted_experiment(PolicySpec::orr(), JobFaultSemantics::Lost)
        .run()
        .expect("runs");
    let lost = |r: &ExperimentResult| r.runs.iter().map(|x| x.jobs_lost).sum::<u64>();
    // Both are failure-aware, so losses come only from the notice window
    // and full outages; re-optimizing must not make them worse.
    assert!(
        lost(&reorr) <= lost(&orr) + lost(&orr) / 2 + 5,
        "ReORR lost {} vs ORR {}",
        lost(&reorr),
        lost(&orr)
    );
    assert!(reorr.mean_response_ratio.mean.is_finite());
    assert!(reorr.runs.iter().all(|r| r.availability < 1.0));
}

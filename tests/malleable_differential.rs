//! Differential contracts of the malleable axis.
//!
//! The load-bearing guarantee: the malleable subsystem is **structurally
//! invisible** until it is switched on. Concretely:
//!
//! * an *inactive* malleable section — zero fraction, or a section whose
//!   only class is rigid — produces **bit-identical** `RunStats` to no
//!   section at all, across both event-list backends × engines
//!   {classic, conservative-parallel} × faults {off, on} × thread
//!   counts, because inactive sections construct no RNG streams and
//!   schedule no events;
//! * with the tier *active* under a single dispatcher, both engines and
//!   both backends agree bit-for-bit; under D > 1 the parallel engine is
//!   thread-count invisible and matches the classic engine on every
//!   count, conservation witness, and (to merge precision) the Welford
//!   moments — tails differ by design, since the parallel merge folds
//!   per-shard P² estimates instead of replaying the global order;
//! * the allocation conserves capacity (never more cores in use than
//!   the fleet has), and per-class accounting sums to the headline job
//!   counters;
//! * [`hesrpt_shares`] itself matches an independently written
//!   water-filling reference (closed-form ranks, cap clamping,
//!   redistribution) after arbitrary job mixes, checked by a property
//!   test.

use hetsched::cluster::malleable::{hesrpt_shares, AllocJob};
use hetsched::prelude::*;
use proptest::prelude::*;

/// A small, statistically alive heterogeneous system.
fn base_cfg(faults: bool, backend: EventListBackend) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_default(&[1.0, 1.0, 2.0, 2.0, 4.0, 4.0, 8.0, 8.0]);
    cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
    cfg.horizon = 6_000.0;
    cfg.warmup = 600.0;
    cfg.event_list = backend;
    if faults {
        cfg.faults = Some(
            FaultSpec::exponential(2_000.0, 200.0).with_semantics(JobFaultSemantics::Resubmit),
        );
    }
    cfg
}

/// Runs one replication and returns its stats with the policy name
/// blanked (the only field allowed to differ between twins).
fn run_anon(
    cfg: ClusterConfig,
    spec: PolicySpec,
    sim_threads: usize,
    replication: u64,
) -> RunStats {
    let mut exp = Experiment::new("malleable_diff", cfg, spec);
    exp.sim_threads = sim_threads;
    let mut stats = exp.run_single(replication).expect("replication runs");
    stats.policy = String::new();
    stats
}

/// The two ways of writing an inactive section.
fn inactive_sections() -> [MalleableSpec; 2] {
    [
        MalleableSpec::power_law(0.0, 0.5),
        MalleableSpec {
            fraction: 1.0,
            classes: vec![MalleableClass {
                curve: SpeedupCurve::Rigid,
                weight: 1.0,
            }],
        },
    ]
}

#[test]
fn inactive_sections_are_bit_invisible() {
    for backend in [EventListBackend::Heap, EventListBackend::Calendar] {
        for faults in [false, true] {
            for sim_threads in [0usize, 8] {
                for spec in [PolicySpec::orr(), PolicySpec::DynamicLeastLoad] {
                    let seed = run_anon(base_cfg(faults, backend), spec, sim_threads, 3);
                    for section in inactive_sections() {
                        let mut cfg = base_cfg(faults, backend);
                        cfg.malleable = Some(section);
                        let twin = run_anon(cfg, spec, sim_threads, 3);
                        assert_eq!(
                            seed, twin,
                            "inactive malleable section diverged \
                             (backend {backend:?}, faults {faults}, \
                             sim_threads {sim_threads})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn inactive_sections_are_invisible_when_sharded() {
    // The same invisibility with a sharded dispatch tier, where the
    // allocation ranges would partition by shard if the tier formed.
    for sim_threads in [0usize, 2] {
        let mut cfg = base_cfg(false, EventListBackend::Heap);
        cfg.dispatch = DispatchSpec::sharded(2, SplitterSpec::IidRandom);
        let seed = run_anon(cfg.clone(), PolicySpec::orr(), sim_threads, 1);
        cfg.malleable = Some(MalleableSpec::power_law(0.0, 0.5));
        let twin = run_anon(cfg, PolicySpec::orr(), sim_threads, 1);
        assert_eq!(
            seed, twin,
            "sharded run diverged (sim_threads {sim_threads})"
        );
    }
}

/// An active-tier configuration.
fn tier_cfg(faults: bool, backend: EventListBackend, fraction: f64) -> ClusterConfig {
    let mut cfg = base_cfg(faults, backend);
    cfg.malleable = Some(MalleableSpec::power_law(fraction, 0.5));
    cfg
}

#[test]
fn active_tier_agrees_across_backends_and_engines() {
    for policy in [PolicySpec::Hesrpt, PolicySpec::HesrptStatic] {
        for faults in [false, true] {
            let heap = run_anon(tier_cfg(faults, EventListBackend::Heap, 0.5), policy, 0, 7);
            let calendar = run_anon(
                tier_cfg(faults, EventListBackend::Calendar, 0.5),
                policy,
                0,
                7,
            );
            assert_eq!(
                heap, calendar,
                "tier diverged across FEL backends (faults {faults})"
            );
            let pdes = run_anon(tier_cfg(faults, EventListBackend::Heap, 0.5), policy, 8, 7);
            assert_eq!(
                heap, pdes,
                "tier diverged across engines (faults {faults}, sim_threads 8)"
            );
            assert!(heap.malleable.is_some(), "tier stats must be recorded");
        }
    }
}

#[test]
fn sharded_tier_agrees_across_engines() {
    // Two dispatch shards: the tier partitions the fleet into two
    // independent allocation domains. The parallel engine must be
    // bit-identical across thread counts; against the classic engine
    // it shares every count and conservation witness and agrees on the
    // Welford moments to merge precision — but not bitwise, because at
    // D > 1 the parallel merge folds per-shard accumulators (exact
    // Chan merge for means, jobs-weighted P² estimates for tails)
    // instead of replaying the classic global completion order.
    let make = || {
        let mut cfg = tier_cfg(false, EventListBackend::Heap, 0.75);
        cfg.dispatch = DispatchSpec::sharded(2, SplitterSpec::IidRandom);
        cfg
    };
    let classic = run_anon(make(), PolicySpec::Hesrpt, 0, 5);
    let one = run_anon(make(), PolicySpec::Hesrpt, 1, 5);
    let two = run_anon(make(), PolicySpec::Hesrpt, 2, 5);
    assert_eq!(one, two, "sharded tier must be thread-count invisible");
    assert_eq!(classic.shards.len(), 2);
    assert_eq!(classic.shards, one.shards);
    assert_eq!(classic.jobs_counted, one.jobs_counted);
    assert_eq!(classic.jobs_finished, one.jobs_finished);
    // Tier bookkeeping is per-shard in both engines, so it matches
    // exactly; per-class completion counts do too.
    assert_eq!(classic.malleable, one.malleable);
    let counts = |s: &RunStats| -> Vec<(u16, u64)> {
        s.classes.iter().map(|c| (c.class, c.count)).collect()
    };
    assert_eq!(counts(&classic), counts(&one));
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs());
    assert!(
        close(classic.mean_slowdown, one.mean_slowdown),
        "merged slowdown drifted: {} vs {}",
        classic.mean_slowdown,
        one.mean_slowdown
    );
    assert!(
        close(classic.mean_response_time, one.mean_response_time),
        "merged response drifted: {} vs {}",
        classic.mean_response_time,
        one.mean_response_time
    );
}

#[test]
fn tier_conserves_capacity_and_accounts_every_job() {
    for fraction in [0.25, 1.0] {
        let stats = run_anon(
            tier_cfg(true, EventListBackend::Heap, fraction),
            PolicySpec::Hesrpt,
            0,
            11,
        );
        let m = stats.malleable.as_ref().expect("tier stats recorded");
        assert!(
            m.max_cores_in_use <= m.fleet_cores + 1e-9,
            "allocated {} cores of {}",
            m.max_cores_in_use,
            m.fleet_cores
        );
        assert!(m.reallocations > 0, "the tier must have reallocated");
        assert!(m.malleable_jobs > 0, "some arrivals must be malleable");
        // Per-class counts fold back to the headline counter.
        let class_total: u64 = stats.classes.iter().map(|c| c.count).sum();
        assert_eq!(class_total, stats.jobs_finished);
        // The slowdown stream is populated and positive.
        assert!(stats.mean_slowdown > 0.0);
        assert!(stats.p95_slowdown >= stats.mean_slowdown * 0.1);
        // Determinism: the same replication reruns bit-identically.
        let again = run_anon(
            tier_cfg(true, EventListBackend::Heap, fraction),
            PolicySpec::Hesrpt,
            0,
            11,
        );
        assert_eq!(stats, again);
    }
}

/// Independent water-filling reference for [`hesrpt_shares`],
/// implementing the documented fixed point a different way: rank
/// weights are computed once over the full (remaining, seq) ordering;
/// each round clamps **every** current violator at once (the
/// production code clamps one per round — removing a violator strictly
/// increases the remaining proportional shares, so previous violators
/// stay violators and both schedules converge to the same fixed
/// point), then redistributes the free budget over the uncapped jobs.
fn reference_shares(jobs: &[AllocJob], cores: f64) -> Vec<f64> {
    let m = jobs.len();
    let mut share = vec![0.0; m];
    if m == 0 || cores <= 0.0 {
        return share;
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        jobs[a]
            .remaining
            .total_cmp(&jobs[b].remaining)
            .then(jobs[a].seq.cmp(&jobs[b].seq))
    });
    // Closed-form weights, fixed from the full ranking.
    let mut raw = vec![0.0; m];
    for (r, &i) in order.iter().enumerate() {
        let inv_p = 1.0 / jobs[i].elasticity.clamp(1e-6, 1.0);
        raw[i] = ((m - r) as f64).powf(inv_p) - ((m - r - 1) as f64).powf(inv_p);
    }
    let mut clamped = vec![false; m];
    loop {
        let budget = cores
            - (0..m)
                .filter(|&i| clamped[i])
                .map(|i| share[i])
                .sum::<f64>();
        let raw_sum: f64 = (0..m).filter(|&i| !clamped[i]).map(|i| raw[i]).sum();
        if raw_sum <= 0.0 || budget <= 0.0 {
            break;
        }
        let mut any_clamped = false;
        for i in 0..m {
            if !clamped[i] && budget * raw[i] / raw_sum > jobs[i].cap {
                share[i] = jobs[i].cap;
                clamped[i] = true;
                any_clamped = true;
            }
        }
        if !any_clamped {
            for i in 0..m {
                if !clamped[i] {
                    share[i] = budget * raw[i] / raw_sum;
                }
            }
            break;
        }
    }
    share
}

fn alloc_job(remaining: f64, elasticity: f64, cap: f64, seq: u64) -> AllocJob {
    AllocJob {
        remaining,
        elasticity,
        cap,
        seq,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// With one shared elasticity, the production allocator matches the
    /// independent reference and obeys the conservation law.
    #[test]
    fn hesrpt_matches_water_filling_reference(
        remainings in proptest::collection::vec(0.1f64..100.0, 1..8),
        p in 0.1f64..1.0,
        cores in 0.5f64..32.0,
        cap_scale in 0.2f64..4.0,
    ) {
        let jobs: Vec<AllocJob> = remainings
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                // A mix of capped and uncapped jobs: even seqs are
                // capped tight enough that clamping actually happens.
                let cap = if i % 2 == 0 { cap_scale } else { f64::INFINITY };
                alloc_job(r, p, cap, i as u64)
            })
            .collect();
        let got = hesrpt_shares(&jobs, cores);
        let want = reference_shares(&jobs, cores);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert!(
                (g - w).abs() <= 1e-6 * (1.0 + w.abs()),
                "job {i}: got {g}, reference {w} (all: {got:?} vs {want:?})"
            );
        }
        // Conservation: everything is handed out up to the cap sum.
        let cap_sum: f64 = jobs.iter().map(|j| j.cap.min(cores)).sum();
        let total: f64 = got.iter().sum();
        prop_assert!(total <= cores + 1e-9);
        prop_assert!(total <= cap_sum + 1e-9);
        // No share exceeds its cap, none is negative.
        for (j, g) in jobs.iter().zip(&got) {
            prop_assert!(*g >= 0.0 && *g <= j.cap + 1e-9);
        }
    }

    /// With equal caps, shorter jobs never receive less than longer
    /// ones — the SRPT-flavored ordering of the closed form.
    #[test]
    fn hesrpt_shares_are_srpt_ordered(
        remainings in proptest::collection::vec(0.1f64..100.0, 2..8),
        p in 0.1f64..1.0,
        cores in 0.5f64..32.0,
    ) {
        let jobs: Vec<AllocJob> = remainings
            .iter()
            .enumerate()
            .map(|(i, &r)| alloc_job(r, p, f64::INFINITY, i as u64))
            .collect();
        let got = hesrpt_shares(&jobs, cores);
        let mut idx: Vec<usize> = (0..jobs.len()).collect();
        idx.sort_by(|&a, &b| jobs[a].remaining.total_cmp(&jobs[b].remaining));
        for w in idx.windows(2) {
            prop_assert!(
                got[w[0]] >= got[w[1]] - 1e-9,
                "shorter job got less: {got:?} for {remainings:?}"
            );
        }
        // Uncapped: the full capacity is handed out.
        let total: f64 = got.iter().sum();
        prop_assert!((total - cores).abs() <= 1e-6 * cores);
    }
}

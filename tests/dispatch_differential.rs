//! Differential contracts of the dispatcher tier.
//!
//! The load-bearing guarantee: a `D = 1` tier with sync disabled is
//! **bit-identical** to the plain single-dispatcher simulation — for
//! every splitter kind, on both event-list backends, with and without
//! fault injection, at any thread count. The tier must be structurally
//! invisible until sharding is actually requested.
//!
//! The second contract: enabling sharding must not perturb the existing
//! RNG streams. The splitter draws from its own reserved stream, so the
//! arrival process (and hence `jobs_counted`) is identical whether the
//! stream is split across 1 or 8 dispatchers.

use hetsched::prelude::*;

/// A small, statistically alive base system (shared by every test; kept
/// deliberately fault-free — fault variants add their own spec).
fn base_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0, 4.0]);
    cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
    cfg.horizon = 30_000.0;
    cfg.warmup = 3_000.0;
    cfg
}

fn experiment(cfg: ClusterConfig, name: &str) -> Experiment {
    let mut e = Experiment::new(name, cfg, PolicySpec::orr());
    e.replications = 3;
    e
}

/// Every splitter kind at `D = 1` must collapse to the trivial router:
/// zero RNG draws, zero state, results equal to the default config.
#[test]
fn d1_tier_is_invisible_for_every_splitter_kind() {
    let baseline = experiment(base_cfg(), "plain").run().expect("baseline");
    for splitter in [
        SplitterSpec::RoundRobin,
        SplitterSpec::IidRandom,
        SplitterSpec::SourceHash { sources: 16 },
    ] {
        let mut cfg = base_cfg();
        cfg.dispatch = DispatchSpec {
            dispatchers: 1,
            splitter,
            sync: None,
            ..Default::default()
        };
        let tiered = experiment(cfg, "plain").run().expect("tiered");
        assert_eq!(
            baseline,
            tiered,
            "D=1 with the {} splitter diverged from the seed path",
            splitter.label()
        );
        assert!(tiered.runs.iter().all(|r| r.shards.is_empty()));
        assert!(tiered.runs.iter().all(|r| r.syncs_applied == 0));
    }
}

/// The identity holds on both event-list backends, with faults off and
/// with resubmit-semantics faults churning jobs back through the
/// dispatcher (the path where a tier bug would be most visible).
#[test]
fn d1_identity_holds_on_both_backends_with_and_without_faults() {
    let fault_variants = [
        None,
        Some(FaultSpec::exponential(3_000.0, 300.0).with_semantics(JobFaultSemantics::Resubmit)),
    ];
    for backend in [EventListBackend::Heap, EventListBackend::Calendar] {
        for faults in &fault_variants {
            let mut plain = base_cfg();
            plain.event_list = backend;
            plain.faults = faults.clone();
            let mut tiered = plain.clone();
            tiered.dispatch = DispatchSpec {
                dispatchers: 1,
                splitter: SplitterSpec::IidRandom,
                sync: None,
                ..Default::default()
            };
            let a = experiment(plain, "plain").run().expect("plain");
            let b = experiment(tiered, "plain").run().expect("tiered");
            assert_eq!(
                a,
                b,
                "D=1 diverged on the {} backend (faults: {})",
                backend.label(),
                faults.is_some()
            );
        }
    }
}

/// The identity is thread-count independent: 1 worker and 8 workers
/// produce the same results on both the plain and the tiered path.
#[test]
fn d1_identity_is_thread_count_independent() {
    let mut tiered_cfg = base_cfg();
    tiered_cfg.dispatch = DispatchSpec {
        dispatchers: 1,
        splitter: SplitterSpec::RoundRobin,
        sync: None,
        ..Default::default()
    };
    let run = |cfg: &ClusterConfig, threads: usize| {
        let mut e = experiment(cfg.clone(), "plain");
        e.threads = threads;
        e.run().expect("runs")
    };
    let plain_cfg = base_cfg();
    let results = [
        run(&plain_cfg, 1),
        run(&plain_cfg, 8),
        run(&tiered_cfg, 1),
        run(&tiered_cfg, 8),
    ];
    for r in &results[1..] {
        assert_eq!(&results[0], r);
    }
}

/// Splitter draws come from a reserved RNG stream: sharding the front
/// end must not shift the arrival or job-size streams. `jobs_counted`
/// tallies arrivals in the measurement window before any dispatch
/// decision, so it must be identical at every shard count.
#[test]
fn sharding_does_not_perturb_existing_rng_streams() {
    let baseline = experiment(base_cfg(), "plain").run().expect("baseline");
    for d in [2usize, 4, 8] {
        let mut cfg = base_cfg();
        cfg.dispatch = DispatchSpec::sharded(d, SplitterSpec::IidRandom);
        let sharded = experiment(cfg, "sharded").run().expect("sharded");
        for (a, b) in baseline.runs.iter().zip(&sharded.runs) {
            assert_eq!(
                a.jobs_counted, b.jobs_counted,
                "D={d} shifted the arrival stream"
            );
            assert_eq!(b.shards.len(), d);
            let routed: u64 = b.shards.iter().map(|s| s.jobs).sum();
            assert_eq!(routed, b.jobs_counted, "every counted job routes once");
            let share: f64 = b.shards.iter().map(|s| s.share).sum();
            assert!((share - 1.0).abs() < 1e-12);
        }
    }
}

/// A sharded, synced run is deterministic and backend-agnostic — the
/// same differential the seed path already guarantees, now under the
/// tier's extra event types (SyncPublish/SyncApply).
#[test]
fn sharded_synced_runs_agree_across_backends_and_repeats() {
    let cfg_for = |backend| {
        let mut cfg = base_cfg();
        cfg.event_list = backend;
        cfg.dispatch = DispatchSpec::sharded(4, SplitterSpec::SourceHash { sources: 32 })
            .with_sync(SyncSpec::every(500.0).with_latency(10.0));
        cfg
    };
    let heap = experiment(cfg_for(EventListBackend::Heap), "synced")
        .run()
        .expect("heap");
    let cal = experiment(cfg_for(EventListBackend::Calendar), "synced")
        .run()
        .expect("calendar");
    assert_eq!(heap, cal);
    assert!(heap.runs.iter().all(|r| r.syncs_applied > 0));
    let again = experiment(cfg_for(EventListBackend::Heap), "synced")
        .run()
        .expect("repeat");
    assert_eq!(heap, again);
}

//! Analytic-vs-simulated validation.
//!
//! Under Poisson arrivals the M/M/1-PS formulas of the paper's §2.3 are
//! exact, so the simulator must reproduce them — this is the strongest
//! end-to-end correctness check the reproduction has: it exercises the
//! event kernel, the PS discipline, the dispatchers, and the metric
//! pipeline against closed forms derived independently of all of them.

use hetsched::prelude::*;
use hetsched::queueing::{closed_form, objective};

/// Simulated mean response ratio of `spec` under Poisson arrivals and the
/// given job sizes.
fn simulate(speeds: &[f64], rho: f64, sizes: DistSpec, spec: PolicySpec, reps: u64) -> f64 {
    let mut cfg = ClusterConfig::paper_default(speeds).with_utilization(rho);
    cfg.job_sizes = sizes;
    cfg.arrivals = ArrivalSpec::Poisson;
    cfg.horizon = 400_000.0;
    cfg.warmup = 100_000.0;
    let mut exp = Experiment::new("validation", cfg, spec);
    exp.replications = reps;
    exp.run()
        .expect("valid experiment")
        .mean_response_ratio
        .mean
}

#[test]
fn single_server_matches_mm1_ps() {
    // One speed-1 machine at ρ = 0.7: R̄ = 1/(1−ρ) = 10/3.
    let sim = simulate(
        &[1.0],
        0.7,
        DistSpec::Exponential { mean: 10.0 },
        PolicySpec::wrr(),
        3,
    );
    let theory = 1.0 / (1.0 - 0.7);
    assert!(
        (sim - theory).abs() / theory < 0.05,
        "simulated {sim} vs theory {theory}"
    );
}

#[test]
fn ps_mean_is_insensitive_to_size_distribution() {
    // The PS insensitivity property: the mean response ratio depends on
    // the size distribution only through its mean. Exponential vs
    // Bounded Pareto with the same mean must agree. The heavy tail
    // (jobs up to 21600 s) needs the paper's full 4·10⁶-second horizon —
    // shorter windows censor the largest jobs and bias the mean down.
    let run = |sizes: DistSpec| {
        let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0]).with_utilization(0.6);
        cfg.job_sizes = sizes;
        cfg.arrivals = ArrivalSpec::Poisson;
        let mut exp = Experiment::new("insensitivity", cfg, PolicySpec::wran());
        exp.replications = 3;
        exp.run().expect("valid").mean_response_ratio.mean
    };
    let exp_sizes = run(DistSpec::Exponential { mean: 76.8 });
    let bp_sizes = run(DistSpec::paper_job_sizes());
    assert!(
        (exp_sizes - bp_sizes).abs() / exp_sizes < 0.10,
        "exponential {exp_sizes} vs bounded-pareto {bp_sizes}"
    );
}

#[test]
fn weighted_random_matches_eq3_prediction() {
    // Random splitting of a Poisson stream gives independent Poisson
    // streams, so eq. (3) is exact for WRAN.
    let speeds = [1.0, 1.5, 4.0];
    let rho = 0.65;
    let sys = HetSystem::from_utilization(&speeds, rho).expect("valid");
    let predicted =
        objective::mean_response_ratio(&sys, &sys.weighted_allocation()).expect("feasible");
    let sim = simulate(
        &speeds,
        rho,
        DistSpec::Exponential { mean: 20.0 },
        PolicySpec::wran(),
        4,
    );
    assert!(
        (sim - predicted).abs() / predicted < 0.06,
        "simulated {sim} vs predicted {predicted}"
    );
}

#[test]
fn optimized_random_matches_eq3_prediction() {
    let speeds = [1.0, 1.0, 6.0, 10.0];
    let rho = 0.7;
    let sys = HetSystem::from_utilization(&speeds, rho).expect("valid");
    let alphas = closed_form::optimized_allocation(&sys);
    let predicted = objective::mean_response_ratio(&sys, &alphas).expect("feasible");
    let sim = simulate(
        &speeds,
        rho,
        DistSpec::Exponential { mean: 20.0 },
        PolicySpec::oran(),
        4,
    );
    assert!(
        (sim - predicted).abs() / predicted < 0.06,
        "simulated {sim} vs predicted {predicted}"
    );
}

#[test]
fn realized_utilization_matches_configuration() {
    let mut cfg = ClusterConfig::paper_default(&[1.0, 3.0]).with_utilization(0.55);
    cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
    cfg.arrivals = ArrivalSpec::Poisson;
    cfg.horizon = 400_000.0;
    cfg.warmup = 100_000.0;
    let mut exp = Experiment::new("util", cfg, PolicySpec::wrr());
    exp.replications = 3;
    let r = exp.run().expect("valid");
    let mean_util: f64 =
        r.runs.iter().map(|x| x.realized_utilization).sum::<f64>() / r.runs.len() as f64;
    assert!(
        (mean_util - 0.55).abs() < 0.02,
        "realized utilization {mean_util} vs configured 0.55"
    );
}

#[test]
fn littles_law_holds_per_run() {
    // L = λW: the time-average number of jobs in the system must equal
    // the arrival rate times the mean response time. This ties together
    // three independent measurement paths (time-weighted queue lengths,
    // job counting, and per-job response times).
    let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0]).with_utilization(0.6);
    cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
    cfg.arrivals = ArrivalSpec::Poisson;
    cfg.horizon = 400_000.0;
    cfg.warmup = 100_000.0;
    let mut exp = Experiment::new("littles", cfg.clone(), PolicySpec::wrr());
    exp.replications = 3;
    let r = exp.run().expect("valid");
    let lambda = cfg.lambda();
    for run in &r.runs {
        let l: f64 = run.servers.iter().map(|s| s.mean_queue_len).sum();
        let lw = lambda * run.mean_response_time;
        assert!(
            (l - lw).abs() / lw < 0.05,
            "Little's law violated: L = {l}, λW = {lw}"
        );
    }
}

#[test]
fn extreme_load_does_not_panic() {
    // ρ = 0.98 with CV-3 arrivals and heavy-tailed sizes: queues grow
    // long and the epoch/cancellation machinery is stressed. The run
    // must complete and produce finite statistics.
    let mut cfg = ClusterConfig::paper_default(&[1.0, 1.0, 12.0]).with_utilization(0.98);
    cfg.horizon = 100_000.0;
    cfg.warmup = 10_000.0;
    let mut exp = Experiment::new("extreme", cfg, PolicySpec::orr());
    exp.replications = 2;
    let r = exp.run().expect("valid");
    assert!(r.mean_response_ratio.mean.is_finite());
    assert!(r.fairness.mean.is_finite());
    // Overloaded-in-practice underestimation also must not panic.
    let mut cfg2 = ClusterConfig::paper_default(&[1.0, 1.0, 12.0]).with_utilization(0.95);
    cfg2.horizon = 50_000.0;
    cfg2.warmup = 5_000.0;
    let mut exp2 = Experiment::new("unstable", cfg2, PolicySpec::orr_with_error(-0.3));
    exp2.replications = 1;
    let r2 = exp2.run().expect("valid");
    assert!(r2.mean_response_ratio.mean.is_finite());
}

#[test]
fn per_machine_utilization_matches_alpha() {
    // Under WRAN each machine's utilization is α_iλ/(s_iμ) = ρ for the
    // weighted scheme.
    let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0, 5.0]).with_utilization(0.5);
    cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
    cfg.arrivals = ArrivalSpec::Poisson;
    cfg.horizon = 400_000.0;
    cfg.warmup = 100_000.0;
    let mut exp = Experiment::new("per-machine", cfg, PolicySpec::wran());
    exp.replications = 3;
    let r = exp.run().expect("valid");
    for (i, &u) in r.server_utilizations.iter().enumerate() {
        assert!(
            (u - 0.5).abs() < 0.03,
            "machine {i}: utilization {u}, weighted scheme should equalize at 0.5"
        );
    }
}

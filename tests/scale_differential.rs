//! Differential contracts of the scale-axis policies.
//!
//! The load-bearing guarantee: an indexed policy is a *data-structure*
//! change, never a *decision* change. Concretely:
//!
//! * DYNAMIC-IDX (tournament-tree argmin) reproduces scan DYNAMIC,
//!   JSQ-IDX reproduces JSQ-FULL, and DYNAMIC-SA-IDX (fresh/stale split
//!   index) reproduces scan DYNAMIC-SA — **bit-identical** `RunStats`
//!   up to the policy name — across seeds × faults {off, on} × both
//!   event-list backends × engines {classic, conservative-parallel};
//! * the [`ArgminTree`] itself matches a strict-`<` linear scan (the
//!   leftmost-minimum rule every scan policy uses) after arbitrary
//!   update/decay/membership sequences, checked by a property test.

use hetsched::cluster::ArgminTree;
use hetsched::prelude::*;
use proptest::prelude::*;

/// A small, statistically alive heterogeneous system — large enough
/// that argmin ties and membership churn actually occur.
fn base_cfg(faults: bool, backend: EventListBackend) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_default(&[1.0, 1.0, 2.0, 2.0, 4.0, 4.0, 8.0, 8.0]);
    cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
    cfg.horizon = 15_000.0;
    cfg.warmup = 1_500.0;
    cfg.event_list = backend;
    if faults {
        cfg.faults = Some(
            FaultSpec::exponential(3_000.0, 300.0).with_semantics(JobFaultSemantics::Resubmit),
        );
    }
    cfg
}

/// Runs one replication of `spec` and returns its stats with the policy
/// name blanked (the only field allowed to differ between twins).
fn run_anon(
    cfg: ClusterConfig,
    spec: PolicySpec,
    sim_threads: usize,
    replication: u64,
) -> RunStats {
    let mut exp = Experiment::new("scale_diff", cfg, spec);
    exp.sim_threads = sim_threads;
    let mut stats = exp.run_single(replication).expect("replication runs");
    stats.policy = String::new();
    stats
}

/// The three scan/indexed twin pairs under test.
fn twin_pairs() -> [(PolicySpec, PolicySpec); 3] {
    [
        (PolicySpec::DynamicLeastLoad, PolicySpec::IndexedDynamic),
        (PolicySpec::JsqFull, PolicySpec::IndexedJsq),
        (
            PolicySpec::stale_aware_dynamic(200.0),
            PolicySpec::IndexedStaleAware {
                confidence_window: 200.0,
            },
        ),
    ]
}

/// Every twin pair is bit-identical across seeds × faults × both
/// event-list backends on the classic sequential engine.
#[test]
fn indexed_policies_match_scans_on_classic_engine() {
    for backend in [EventListBackend::Heap, EventListBackend::Calendar] {
        for faults in [false, true] {
            for (scan, indexed) in twin_pairs() {
                for replication in [0u64, 1, 2] {
                    let a = run_anon(base_cfg(faults, backend), scan, 0, replication);
                    let b = run_anon(base_cfg(faults, backend), indexed, 0, replication);
                    assert_eq!(
                        a,
                        b,
                        "{} vs {} diverged (backend {:?}, faults {faults}, \
                         replication {replication})",
                        scan.label(),
                        indexed.label(),
                        backend
                    );
                }
            }
        }
    }
}

/// The twins stay bit-identical through the conservative parallel
/// engine (which routes believed-load updates through per-shard planes
/// and merges shard results deterministically).
#[test]
fn indexed_policies_match_scans_on_parallel_engine() {
    for faults in [false, true] {
        for (scan, indexed) in twin_pairs() {
            let a = run_anon(base_cfg(faults, EventListBackend::Heap), scan, 4, 0);
            let b = run_anon(base_cfg(faults, EventListBackend::Heap), indexed, 4, 0);
            assert_eq!(
                a,
                b,
                "{} vs {} diverged on the parallel engine (faults {faults})",
                scan.label(),
                indexed.label()
            );
        }
    }
}

/// The strict-`<` linear scan the historical policies use: leftmost
/// minimum, absent entries (infinite keys) never win.
fn scan_argmin(keys: &[f64]) -> Option<usize> {
    let mut best: Option<usize> = None;
    let mut best_key = f64::INFINITY;
    for (i, &k) in keys.iter().enumerate() {
        if k < best_key {
            best_key = k;
            best = Some(i);
        }
    }
    best
}

proptest! {
    /// After any sequence of point updates (including infinities for
    /// membership changes and repeated decay-style rewrites), the tree's
    /// argmin equals the leftmost strict-< scan minimum.
    #[test]
    fn argmin_tree_matches_linear_scan(
        len in 1usize..70,
        ops in prop::collection::vec((any::<u16>(), 0u8..200), 0..300)
    ) {
        let mut keys = vec![f64::INFINITY; len];
        let mut tree = ArgminTree::new(len);
        prop_assert_eq!(tree.argmin(), scan_argmin(&keys));
        for (slot, mag) in ops {
            let i = slot as usize % len;
            // Magnitude 199 encodes "absent"; ties are common by design
            // (only 20 distinct finite keys), exercising the leftmost
            // tie-break.
            let key = if mag == 199 {
                f64::INFINITY
            } else {
                f64::from(mag % 20) * 0.5
            };
            keys[i] = key;
            tree.update(i, key);
            prop_assert_eq!(tree.argmin(), scan_argmin(&keys));
            if let Some(best) = tree.argmin() {
                prop_assert_eq!(tree.min_key(), keys[best]);
            }
        }
        // A bulk reload from the same keys lands in the same state.
        let mut reloaded = ArgminTree::new(len);
        reloaded.reload(&keys);
        prop_assert_eq!(reloaded.argmin(), tree.argmin());
    }
}

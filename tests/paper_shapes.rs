//! Qualitative reproduction of the paper's §5 findings at test-friendly
//! fidelity.
//!
//! Absolute numbers need a 4·10⁶-second horizon (see the bench
//! binaries); the *orderings* the paper reports are already stable at
//! the reduced scale used here, which is what these tests pin. Mean
//! response ratios are the comparison metric throughout, as in the
//! paper's figures.

use hetsched::prelude::*;

/// Mean response ratio of `spec` on `cfg` over a few replications.
fn ratio(cfg: &ClusterConfig, spec: PolicySpec) -> f64 {
    let mut exp = Experiment::new(spec.label(), cfg.clone(), spec);
    exp.replications = 4;
    exp.run()
        .expect("valid experiment")
        .mean_response_ratio
        .mean
}

/// A faster variant of the paper workload: same Bounded Pareto shape,
/// scaled down 8× so short horizons hold enough jobs.
fn test_config(speeds: &[f64], rho: f64) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_default(speeds).with_utilization(rho);
    cfg.job_sizes = DistSpec::BoundedPareto {
        k: 1.25,
        p: 2700.0,
        alpha: 1.0,
    };
    cfg.horizon = 200_000.0;
    cfg.warmup = 50_000.0;
    cfg
}

#[test]
fn fig3_shape_skewed_system() {
    // 2 fast (speed 10) + 6 slow; utilization 0.7. (A narrower system
    // than the paper's 18 machines, same physics, faster test.)
    let mut speeds = vec![1.0; 6];
    speeds.extend([10.0, 10.0]);
    let cfg = test_config(&speeds, 0.7);
    let wran = ratio(&cfg, PolicySpec::wran());
    let oran = ratio(&cfg, PolicySpec::oran());
    let wrr = ratio(&cfg, PolicySpec::wrr());
    let orr = ratio(&cfg, PolicySpec::orr());
    let dynamic = ratio(&cfg, PolicySpec::DynamicLeastLoad);

    // Optimized allocation beats weighted for both dispatchers.
    assert!(orr < wrr, "ORR {orr} !< WRR {wrr}");
    assert!(oran < wran, "ORAN {oran} !< WRAN {wran}");
    // Round-robin dispatching beats random for both allocations.
    assert!(orr < oran, "ORR {orr} !< ORAN {oran}");
    assert!(wrr < wran, "WRR {wrr} !< WRAN {wran}");
    // The dynamic yardstick lower-bounds every static scheme.
    assert!(dynamic < orr * 1.05, "DYNAMIC {dynamic} should be ≈ best");
    // In a strongly skewed system, allocation matters more than
    // dispatching: ORAN beats WRR (paper §5.1).
    assert!(oran < wrr, "skewed system: ORAN {oran} !< WRR {wrr}");
}

#[test]
fn fig3_shape_homogeneous_system() {
    // Homogeneous system: optimized == weighted allocation, so the
    // dispatcher is all that matters and WRR ≈ ORR < WRAN ≈ ORAN.
    let cfg = test_config(&[1.0; 8], 0.7);
    let wran = ratio(&cfg, PolicySpec::wran());
    let wrr = ratio(&cfg, PolicySpec::wrr());
    let orr = ratio(&cfg, PolicySpec::orr());
    assert!(wrr < wran, "homogeneous: WRR {wrr} !< WRAN {wran}");
    assert!(
        (orr - wrr).abs() / wrr < 0.05,
        "homogeneous: ORR {orr} should equal WRR {wrr}"
    );
}

#[test]
fn fig5_shape_load_sweep() {
    // The optimized-vs-weighted gap exists at moderate and heavy load on
    // a Table-3-like system, and every ratio grows with load.
    let speeds = [1.0, 1.0, 1.5, 2.0, 5.0, 10.0];
    let mut prev_orr = 0.0;
    for rho in [0.5, 0.7, 0.85] {
        let cfg = test_config(&speeds, rho);
        let orr = ratio(&cfg, PolicySpec::orr());
        let wran = ratio(&cfg, PolicySpec::wran());
        assert!(orr < wran, "rho={rho}: ORR {orr} !< WRAN {wran}");
        assert!(orr > prev_orr, "response ratio must grow with load");
        prev_orr = orr;
    }
}

#[test]
fn fig6_shape_estimation_errors() {
    // §5.4 at heavy load: underestimation hurts ORR badly (overloads the
    // fast machines), overestimation is nearly free.
    let speeds = [1.0, 1.0, 1.0, 1.0, 10.0, 10.0];
    let cfg = test_config(&speeds, 0.85);
    let exact = ratio(&cfg, PolicySpec::orr());
    let over = ratio(&cfg, PolicySpec::orr_with_error(0.10));
    let under = ratio(&cfg, PolicySpec::orr_with_error(-0.15));
    assert!(
        (over - exact).abs() / exact < 0.35,
        "overestimate {over} should stay near exact {exact}"
    );
    assert!(
        under > exact * 1.3,
        "underestimate {under} should degrade well past exact {exact}"
    );
}

#[test]
fn table1_shape_dynamic_skew() {
    // Dynamic Least-Load sends disproportionately much to fast machines:
    // normalized dispatch share (fraction / speed share) must increase
    // with speed.
    let speeds = scenarios::table1_speeds();
    let cfg = test_config(&speeds, 0.7);
    let mut exp = Experiment::new("table1", cfg, PolicySpec::DynamicLeastLoad);
    exp.replications = 3;
    let r = exp.run().expect("valid");
    let total: f64 = speeds.iter().sum();
    let normalized: Vec<f64> = r
        .dispatch_fractions
        .iter()
        .zip(&speeds)
        .map(|(f, s)| f / (s / total))
        .collect();
    for w in normalized.windows(2) {
        assert!(
            w[0] <= w[1] * 1.05,
            "normalized shares should increase with speed: {normalized:?}"
        );
    }
    // The slowest machine is starved far below its capacity share; the
    // fastest gets more than its share.
    assert!(normalized[0] < 0.4, "slowest share {normalized:?}");
    assert!(normalized[6] > 1.0, "fastest share {normalized:?}");
}

#[test]
fn fairness_shape_optimized_beats_weighted() {
    // Figure 3(c): optimized allocation also improves fairness (std-dev
    // of the response ratio).
    let mut speeds = vec![1.0; 6];
    speeds.extend([10.0, 10.0]);
    let cfg = test_config(&speeds, 0.7);
    let get_fairness = |spec: PolicySpec| {
        let mut exp = Experiment::new(spec.label(), cfg.clone(), spec);
        exp.replications = 4;
        exp.run().expect("valid").fairness.mean
    };
    let orr = get_fairness(PolicySpec::orr());
    let wrr = get_fairness(PolicySpec::wrr());
    assert!(orr < wrr, "fairness: ORR {orr} !< WRR {wrr}");
}

//! Differential check of the two future-event-list backends.
//!
//! The heap ([`EventQueue`]) and the calendar queue ([`CalendarQueue`])
//! implement the same [`FutureEventList`] contract: timestamp order,
//! FIFO ties, exact cancellation. This suite drives both with identical
//! random schedule/cancel/pop scripts — including deliberate tie bursts
//! — and requires every observable (pop results, cancel return values,
//! `peek_time`, `len`) to match step for step. A final test closes the
//! loop at the public-API level: a whole `Experiment` must produce equal
//! results under either backend.
//!
//! Scripts respect the calendar queue's monotone-clock contract (never
//! schedule before the last popped time), which is also the only way the
//! simulation engine uses the list.

use hetsched::desim::{CalendarQueue, EventQueue, Rng64, SimTime};
use hetsched::prelude::*;
use proptest::prelude::*;

/// One step of a backend-agnostic script.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule at `now + dt` (dt ≥ 0; quantized values produce ties).
    Schedule(f64),
    /// Cancel the pending id at `index % pending.len()` (no-op when
    /// nothing is pending) and compare the returned flag.
    Cancel(usize),
    /// Pop once and compare `(time, payload)`.
    Pop,
}

/// Plays `ops` on both backends in lockstep, asserting every observable
/// matches, then drains both and asserts the tails match too.
fn assert_backends_agree(ops: &[Op]) {
    let mut heap: EventQueue<u32> = EventQueue::new();
    let mut cal: CalendarQueue<u32> = CalendarQueue::new();
    // Pending ids, same insertion order on both sides; cancel picks the
    // same index so both backends kill the "same" event.
    let mut heap_ids = Vec::new();
    let mut cal_ids = Vec::new();
    let mut next_payload = 0u32;
    let mut now = 0.0f64;

    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Schedule(dt) => {
                let t = SimTime::new(now + dt);
                heap_ids.push(heap.schedule(t, next_payload));
                cal_ids.push(cal.schedule(t, next_payload));
                next_payload += 1;
            }
            Op::Cancel(index) => {
                if heap_ids.is_empty() {
                    continue;
                }
                let i = index % heap_ids.len();
                let a = heap.cancel(heap_ids.swap_remove(i));
                let b = cal.cancel(cal_ids.swap_remove(i));
                assert_eq!(a, b, "step {step}: cancel flags diverge");
            }
            Op::Pop => {
                let a = heap.pop();
                let b = cal.pop();
                match (&a, &b) {
                    (Some(x), Some(y)) => {
                        assert_eq!(x.time, y.time, "step {step}: pop times diverge");
                        assert_eq!(x.payload, y.payload, "step {step}: pop payloads diverge");
                        now = x.time.as_secs();
                    }
                    (None, None) => {}
                    _ => panic!("step {step}: one backend empty, the other not"),
                }
            }
        }
        assert_eq!(heap.peek_time(), cal.peek_time(), "step {step}: peek_time");
        assert_eq!(heap.len(), cal.len(), "step {step}: len");
    }

    loop {
        let a = heap.pop();
        let b = cal.pop();
        match (a, b) {
            (Some(x), Some(y)) => {
                assert_eq!((x.time, x.payload), (y.time, y.payload), "drain diverges");
            }
            (None, None) => break,
            _ => panic!("drain: one backend empty, the other not"),
        }
    }
    assert_eq!(heap.scheduled_total(), cal.scheduled_total());
    assert_eq!(heap.popped_total(), cal.popped_total());
}

/// Decodes raw `(selector, magnitude)` pairs into a script. Magnitudes
/// are quantized to multiples of 0.5 so identical timestamps (ties) are
/// common rather than measure-zero.
fn decode_ops(raw: &[(u8, u16)]) -> Vec<Op> {
    raw.iter()
        .map(|&(sel, mag)| match sel % 4 {
            0 | 1 => Op::Schedule(f64::from(mag % 40) * 0.5),
            2 => Op::Cancel(usize::from(mag)),
            _ => Op::Pop,
        })
        .collect()
}

#[test]
fn random_interleavings_match() {
    for seed in 0..20 {
        let mut rng = Rng64::from_seed(seed);
        let raw: Vec<(u8, u16)> = (0..400)
            .map(|_| {
                let bits = rng.next_u64();
                (bits as u8, (bits >> 8) as u16)
            })
            .collect();
        assert_backends_agree(&decode_ops(&raw));
    }
}

#[test]
fn tie_bursts_pop_in_fifo_order_on_both() {
    // Many events at exactly the same instants, interleaved with pops
    // and cancellations: the strictest FIFO-tie stress.
    let mut ops = Vec::new();
    for _ in 0..10 {
        for _ in 0..8 {
            ops.push(Op::Schedule(1.0));
            ops.push(Op::Schedule(1.0));
            ops.push(Op::Schedule(2.0));
        }
        ops.push(Op::Cancel(3));
        ops.push(Op::Cancel(0));
        for _ in 0..12 {
            ops.push(Op::Pop);
        }
    }
    assert_backends_agree(&ops);
}

#[test]
fn cancel_heavy_scripts_match() {
    // Cancellation dominates: most scheduled events die before firing.
    let mut ops = Vec::new();
    for i in 0..60 {
        ops.push(Op::Schedule(f64::from(i % 7)));
        ops.push(Op::Schedule(f64::from(i % 5)));
        ops.push(Op::Cancel(i as usize));
        if i % 3 == 0 {
            ops.push(Op::Pop);
        }
    }
    for _ in 0..120 {
        ops.push(Op::Pop);
    }
    assert_backends_agree(&ops);
}

proptest! {
    /// Any schedule/cancel/pop interleaving is observably identical on
    /// both backends, ties included.
    #[test]
    fn backends_agree_on_arbitrary_scripts(
        raw in prop::collection::vec((any::<u8>(), any::<u16>()), 0..300)
    ) {
        assert_backends_agree(&decode_ops(&raw));
    }
}

#[test]
fn experiment_results_identical_across_backends() {
    let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0, 8.0]);
    cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
    cfg.horizon = 20_000.0;
    cfg.warmup = 2_000.0;

    let mut heap_cfg = cfg.clone();
    heap_cfg.event_list = EventListBackend::Heap;
    let mut cal_cfg = cfg;
    cal_cfg.event_list = EventListBackend::Calendar;

    let mut heap_exp = Experiment::new("heap", heap_cfg, PolicySpec::orr());
    heap_exp.replications = 3;
    let mut cal_exp = Experiment::new("cal", cal_cfg, PolicySpec::orr());
    cal_exp.replications = 3;

    let heap = heap_exp.run().expect("heap run");
    let cal = cal_exp.run().expect("calendar run");
    // Names differ by construction; every statistic must not.
    assert_eq!(heap.policy, cal.policy);
    assert_eq!(heap.mean_response_time, cal.mean_response_time);
    assert_eq!(heap.mean_response_ratio, cal.mean_response_ratio);
    assert_eq!(heap.fairness, cal.fairness);
    assert_eq!(heap.p95_response_ratio, cal.p95_response_ratio);
    assert_eq!(heap.runs, cal.runs);
}

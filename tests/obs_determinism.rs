//! The observability layer's non-perturbation contract, checked across
//! crate boundaries at the public-API level.
//!
//! The hard invariant: enabling probes must not change a single bit of
//! the simulation's results. Probes *read* model state at window
//! boundaries; they never schedule events and never draw from the RNG
//! streams. This suite pins that down for both future-event-list
//! backends, with and without fault injection, and across thread
//! counts — plus sanity checks on the kernel counters and the exported
//! time series that only the obs layer can provide.

use hetsched::prelude::*;

/// A small three-machine cluster with the deviation tracker on, sized so
/// a full experiment finishes in well under a second.
fn base_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0, 8.0]);
    cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
    cfg.horizon = 20_000.0;
    cfg.warmup = 2_000.0;
    cfg.deviation_interval = Some(500.0);
    cfg
}

fn experiment(cfg: ClusterConfig, threads: usize) -> Experiment {
    let mut e = Experiment::new("obs", cfg, PolicySpec::orr());
    e.replications = 3;
    e.threads = threads;
    e
}

/// Takes the obs reports out of an observed result so it can be compared
/// bit-for-bit against an obs-off baseline.
fn strip(mut r: ExperimentResult) -> (ExperimentResult, Vec<ObsReport>) {
    let reports = r
        .runs
        .iter_mut()
        .map(|run| run.obs.take().expect("obs was enabled on every run"))
        .collect();
    (r, reports)
}

#[test]
fn obs_on_is_bit_identical_to_obs_off_on_both_backends() {
    for backend in [EventListBackend::Heap, EventListBackend::Calendar] {
        let mut plain = base_cfg();
        plain.event_list = backend;
        let mut with_obs = plain.clone();
        with_obs.obs = Some(ObsSpec::every(500.0));

        let baseline = experiment(plain, 1).run().expect("baseline runs");
        let observed = experiment(with_obs, 1).run().expect("observed runs");
        let (observed, reports) = strip(observed);
        assert_eq!(observed, baseline, "probes perturbed a {backend:?} run");
        for report in &reports {
            // horizon 20 000 s at 500 s windows → 40 full windows.
            assert_eq!(report.len(), 40);
        }
    }
}

#[test]
fn obs_reports_are_thread_count_invariant() {
    let mut cfg = base_cfg();
    cfg.obs = Some(ObsSpec::default());
    let one = experiment(cfg.clone(), 1).run().expect("threads=1");
    let eight = experiment(cfg, 8).run().expect("threads=8");
    assert_eq!(one, eight);
}

#[test]
fn obs_is_inert_under_fault_injection() {
    let mut plain = base_cfg();
    plain.faults = Some(FaultSpec {
        up_time: DistSpec::Exponential { mean: 4_000.0 },
        down_time: DistSpec::Exponential { mean: 500.0 },
        on_crash: JobFaultSemantics::Resubmit,
        notice_delay_mean: 10.0,
        servers: None,
    });
    let mut with_obs = plain.clone();
    with_obs.obs = Some(ObsSpec::default());

    let baseline = experiment(plain, 1).run().expect("faulty baseline");
    let observed = experiment(with_obs, 1).run().expect("faulty observed");
    let (observed, reports) = strip(observed);
    assert_eq!(observed, baseline, "probes perturbed a faulty run");
    // The runs actually exercised the fault machinery …
    assert!(baseline.runs.iter().any(|r| r.crashes > 0));
    // … and the up[i] probe saw at least one machine down at a boundary.
    let saw_down = reports.iter().any(|rep| {
        (0..3).any(|i| {
            rep.column(&format!("up[{i}]"))
                .expect("up column exists")
                .contains(&0.0)
        })
    });
    assert!(saw_down, "no down state ever sampled despite crashes");
}

#[test]
fn deviation_column_reproduces_the_tracker_bitwise() {
    let mut cfg = base_cfg();
    cfg.obs = Some(ObsSpec::every(500.0));
    let exp = experiment(cfg, 1);
    for rep in 0..exp.replications {
        let mut stats = exp.run_single(rep).expect("replication runs");
        let report = stats.obs.take().expect("obs enabled");
        let column = report.column("deviation").expect("deviation column");
        assert_eq!(
            column, stats.deviations,
            "obs deviation diverges from metrics::DeviationTracker at rep {rep}"
        );
    }
}

#[test]
fn kernel_counters_reflect_the_backend() {
    let mut heap_cfg = base_cfg();
    heap_cfg.obs = Some(ObsSpec::default());
    heap_cfg.event_list = EventListBackend::Heap;
    let mut cal_cfg = heap_cfg.clone();
    cal_cfg.event_list = EventListBackend::Calendar;

    let exp = experiment(heap_cfg, 1);
    let heap = exp.run_single(0).expect("heap run").obs.expect("report");
    let exp = experiment(cal_cfg, 1);
    let mut cal = exp
        .run_single(0)
        .expect("calendar run")
        .obs
        .expect("report");

    assert!(heap.kernel.scheduled >= heap.kernel.popped);
    assert!(heap.kernel.popped > 0);
    assert!(heap.kernel.high_water > 0);
    // The cluster model never cancels events.
    assert_eq!(heap.kernel.cancelled, 0);
    // Resizing is a calendar-queue concept; the heap never reports it.
    assert_eq!(heap.kernel.resizes, 0);
    assert!(cal.kernel.resizes > 0);
    // Everything else about the series — including the other kernel
    // counters — is backend-invariant.
    cal.kernel.resizes = 0;
    assert_eq!(heap, cal);
}

#[test]
fn jsonl_export_is_well_formed_and_monotone() {
    let mut cfg = base_cfg();
    cfg.obs = Some(ObsSpec::every(1_000.0));
    let stats = experiment(cfg, 1).run_single(0).expect("run");
    let report = stats.obs.expect("report");
    let jsonl = report.to_jsonl().expect("series serializes");

    let mut prev = f64::NEG_INFINITY;
    let mut lines = 0usize;
    for line in jsonl.lines() {
        let rest = line
            .strip_prefix("{\"t\":")
            .unwrap_or_else(|| panic!("line missing t field: {line}"));
        let t: f64 = rest[..rest.find(',').expect("more fields follow t")]
            .parse()
            .expect("t parses as a number");
        assert!(t > prev, "timestamps must be strictly increasing");
        prev = t;
        assert!(line.ends_with('}'));
        lines += 1;
    }
    assert_eq!(lines, 20); // 20 000 s / 1 000 s windows
    assert_eq!(report.len(), lines);

    // The CSV export agrees on shape: header + one row per window.
    let csv = report.to_csv();
    assert_eq!(csv.lines().count(), lines + 1);
    assert!(csv.starts_with("t,"));
}

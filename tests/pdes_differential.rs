//! Differential contracts of the conservative parallel engine.
//!
//! The load-bearing guarantee: the parallel engine is a *scheduling*
//! change, never a *model* change. Concretely:
//!
//! * one shard through the parallel engine is **bit-identical** to the
//!   classic sequential simulation — on both event-list backends, with
//!   and without fault injection, with and without the probe plane;
//! * at every shard count, one worker thread and `D` real worker
//!   threads produce **bit-identical** results (per-shard arrival
//!   pre-partitioning, disjoint RNG streams, and shard-ordered merge
//!   reductions make the result independent of execution interleaving);
//! * jobs are conserved: the per-shard routing counts always sum to the
//!   run's total job count.
//!
//! The grid covers shard counts {1, 2, 4, 8} × {heap, calendar} ×
//! faults {off, on} × observability {off, on}. Wide shard counts use
//! `ParallelSimulation` directly (the `Experiment` front-end guards
//! thread oversubscription, which a 1-core CI box would trip).

use hetsched::cluster::pdes::{shard_config, shard_ranges};
use hetsched::cluster::{ParallelSimulation, Policy, Simulation};
use hetsched::prelude::*;

/// A small, statistically alive 8-computer system.
fn base_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0, 4.0, 8.0, 1.0, 2.0, 4.0, 8.0]);
    cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
    cfg.horizon = 15_000.0;
    cfg.warmup = 1_500.0;
    cfg
}

fn grid_cfg(d: usize, backend: EventListBackend, faults: bool, obs: bool) -> ClusterConfig {
    let mut cfg = base_cfg();
    cfg.event_list = backend;
    if d > 1 {
        cfg.dispatch = DispatchSpec::sharded(d, SplitterSpec::IidRandom);
    }
    if faults {
        cfg.faults = Some(
            FaultSpec::exponential(3_000.0, 300.0).with_semantics(JobFaultSemantics::Resubmit),
        );
    }
    if obs {
        cfg.obs = Some(ObsSpec::default());
    }
    cfg
}

/// One ORR policy instance per shard, planned over its server slice.
fn policies(cfg: &ClusterConfig) -> Vec<Box<dyn Policy>> {
    let d = cfg.dispatch.dispatchers.max(1);
    if d == 1 {
        return vec![PolicySpec::orr().build(cfg).expect("policy builds")];
    }
    shard_ranges(cfg.speeds.len(), d)
        .iter()
        .map(|r| {
            PolicySpec::orr()
                .build(&shard_config(cfg, r))
                .expect("policy builds")
        })
        .collect()
}

/// One shard through the parallel engine reproduces the classic
/// sequential simulation bit for bit across the whole option grid.
#[test]
fn single_shard_parallel_engine_matches_classic() {
    for backend in [EventListBackend::Heap, EventListBackend::Calendar] {
        for faults in [false, true] {
            for obs in [false, true] {
                let cfg = grid_cfg(1, backend, faults, obs);
                let classic = Simulation::new(
                    cfg.clone(),
                    PolicySpec::orr().build(&cfg).expect("policy builds"),
                    17,
                )
                .expect("classic builds")
                .run();
                let pdes = ParallelSimulation::new(cfg.clone(), policies(&cfg), 17, 1)
                    .expect("parallel builds")
                    .run();
                assert_eq!(
                    classic, pdes,
                    "1-shard parallel engine diverged from classic \
                     (backend={backend:?}, faults={faults}, obs={obs})"
                );
            }
        }
    }
}

/// At every shard count, thread count is invisible: one worker thread
/// and D real worker threads agree bit for bit, and routing conserves
/// jobs. Faults and probes ride along without breaking either property.
#[test]
fn thread_count_is_invisible_across_the_grid() {
    for d in [1usize, 2, 4, 8] {
        for backend in [EventListBackend::Heap, EventListBackend::Calendar] {
            for faults in [false, true] {
                for obs in [false, true] {
                    let cfg = grid_cfg(d, backend, faults, obs);
                    let seq = ParallelSimulation::new(cfg.clone(), policies(&cfg), 29, 1)
                        .expect("parallel builds")
                        .run();
                    let par = ParallelSimulation::new(cfg.clone(), policies(&cfg), 29, d)
                        .expect("parallel builds")
                        .run();
                    assert_eq!(
                        seq, par,
                        "thread count changed results \
                         (d={d}, backend={backend:?}, faults={faults}, obs={obs})"
                    );
                    if d > 1 {
                        assert_eq!(seq.shards.len(), d);
                        // Conservation: routing counts arrivals that
                        // reached a dispatcher plus fault resubmissions;
                        // arrivals during a total outage are counted but
                        // never routed. Fault-free, the law is exact.
                        let routed: u64 = seq.shards.iter().map(|s| s.jobs).sum();
                        let upper = seq.jobs_counted + seq.jobs_resubmitted;
                        let lower = upper.saturating_sub(seq.jobs_lost);
                        assert!(
                            (lower..=upper).contains(&routed),
                            "shard routing broke job conservation: routed {routed} \
                             outside [{lower}, {upper}] \
                             (d={d}, backend={backend:?}, faults={faults}, obs={obs})"
                        );
                        if !faults {
                            assert_eq!(routed, seq.jobs_counted);
                        }
                    }
                    assert!(seq.jobs_counted > 0, "grid point simulated nothing");
                    if obs {
                        let report = seq.obs.as_ref().expect("probe plane was enabled");
                        assert!(!report.is_empty());
                    }
                }
            }
        }
    }
}

/// The two event-list backends agree inside the parallel engine too
/// (everything except the calendar's resize counter).
#[test]
fn backends_agree_inside_the_parallel_engine() {
    for d in [2usize, 8] {
        let heap_cfg = grid_cfg(d, EventListBackend::Heap, false, true);
        let cal_cfg = grid_cfg(d, EventListBackend::Calendar, false, true);
        let mut heap = ParallelSimulation::new(heap_cfg.clone(), policies(&heap_cfg), 5, 1)
            .expect("parallel builds")
            .run();
        let mut cal = ParallelSimulation::new(cal_cfg.clone(), policies(&cal_cfg), 5, 1)
            .expect("parallel builds")
            .run();
        for stats in [&mut heap, &mut cal] {
            if let Some(obs) = &mut stats.obs {
                obs.kernel.resizes = 0;
            }
        }
        assert_eq!(
            heap, cal,
            "backends diverged inside the parallel engine (d={d})"
        );
    }
}

/// The sync plane works under the parallel engine: a synced D > 1 run
/// applies consensus states on every shard and stays thread-invariant.
#[test]
fn synced_shards_stay_thread_invariant() {
    let mut cfg = grid_cfg(4, EventListBackend::Heap, false, false);
    cfg.dispatch.sync = Some(SyncSpec::every(500.0).with_latency(10.0));
    let seq = ParallelSimulation::new(cfg.clone(), policies(&cfg), 7, 1)
        .expect("parallel builds")
        .run();
    let par = ParallelSimulation::new(cfg.clone(), policies(&cfg), 7, 4)
        .expect("parallel builds")
        .run();
    assert_eq!(seq, par);
    assert!(seq.syncs_applied > 0, "sync plane never fired");
}

/// The `Experiment` front-end takes the same path: `sim_threads = 1`
/// runs match the classic engine across replications, and the nested-
/// parallelism guard rejects absurd thread products instead of
/// oversubscribing the machine.
#[test]
fn experiment_front_end_is_bit_identical_and_guarded() {
    let mut classic = Experiment::new("pdes-diff", base_cfg(), PolicySpec::orr());
    classic.replications = 2;
    let mut pdes = classic.clone();
    pdes.sim_threads = 1;
    assert_eq!(
        classic.run().expect("classic runs").runs,
        pdes.run().expect("parallel runs").runs,
        "Experiment sim_threads=1 diverged from the classic engine"
    );

    let mut absurd = Experiment::new("pdes-absurd", base_cfg(), PolicySpec::orr());
    absurd.threads = 64;
    absurd.sim_threads = 64;
    let err = absurd
        .run()
        .expect_err("absurd thread product must be rejected");
    assert!(
        err.to_string().contains("64"),
        "error should name the offending product: {err}"
    );
}

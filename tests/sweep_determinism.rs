//! The sweep pool's determinism contract, checked across crate
//! boundaries: a multi-point sweep is bit-identical at any thread
//! count, and identical to running each `Experiment` on its own.

use hetsched::prelude::*;
use hetsched_bench::Mode;

/// Three points with deliberately different costs (ρ = 0.3/0.9/0.6) so
/// the longest-expected-first pull order actually permutes execution.
fn three_point_sweep() -> Vec<Experiment> {
    [0.3, 0.9, 0.6]
        .iter()
        .map(|&rho| {
            let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0, 8.0]).with_utilization(rho);
            cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
            cfg.horizon = 20_000.0;
            cfg.warmup = 2_000.0;
            let mut e = Experiment::new(format!("rho={rho}"), cfg, PolicySpec::orr());
            e.replications = 3;
            e
        })
        .collect()
}

#[test]
fn sweep_bit_identical_at_one_and_eight_threads() {
    let one = Sweep::new(three_point_sweep())
        .with_threads(1)
        .run()
        .expect("threads=1 sweep runs");
    let eight = Sweep::new(three_point_sweep())
        .with_threads(8)
        .run()
        .expect("threads=8 sweep runs");
    assert_eq!(one.results, eight.results);
    assert_eq!(one.stats.tasks, eight.stats.tasks);
    assert_eq!(one.stats.total_events, eight.stats.total_events);
}

#[test]
fn sweep_matches_per_point_experiment_loop() {
    let pooled = Sweep::new(three_point_sweep())
        .with_threads(4)
        .run()
        .expect("pooled sweep runs");
    let sequential: Vec<ExperimentResult> = three_point_sweep()
        .iter()
        .map(|p| p.run().expect("per-point run"))
        .collect();
    assert_eq!(pooled.results, sequential);
}

#[test]
fn mode_run_sweep_is_thread_count_invariant() {
    let points = || {
        vec![
            (
                "orr".to_string(),
                scenarios::fig5_config(0.5),
                PolicySpec::orr(),
            ),
            (
                "wrr".to_string(),
                scenarios::fig5_config(0.5),
                PolicySpec::wrr(),
            ),
        ]
    };
    let mut quick = Mode::parse(["--quick".to_string()]);
    quick.threads = 1;
    let (r1, s1) = quick.run_sweep(points());
    quick.threads = 8;
    let (r8, s8) = quick.run_sweep(points());
    assert_eq!(r1, r8);
    assert_eq!(s1.total_events, s8.total_events);
    assert!(s1.total_events > 0);
}

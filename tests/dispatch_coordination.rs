//! Contracts of the coordinated dispatcher tier.
//!
//! The naive sharded tier (see `dispatch_differential.rs` for its
//! baseline contracts) degrades as `D` grows because each shard runs
//! Algorithm 2 over its private substream. The coordinated tier
//! (`Coordination::PhasePreserving`) closes that gap with three
//! mechanisms, each pinned here:
//!
//! 1. **Sequence-stamped replay** — the splitter stamps every arrival
//!    with a global sequence number and each shard replays its peers'
//!    gaps as virtual rotation steps, so the union of the shards'
//!    decisions reconstructs the `D = 1` global dispatch sequence
//!    *exactly*: the response metrics of a coordinated `D = 16` run
//!    with no sync plane are bit-equal to the single-dispatcher run.
//! 2. **Phase-preserving merge** — sync rounds shift each shard's
//!    credit *levels* onto the tier consensus without touching its
//!    rotation phase. The proptest oracles below pin the merge algebra:
//!    credit-mass conservation, dispatch-sequence preservation, and
//!    shard-order permutation invariance of the consensus fold.
//! 3. **Rate-driven re-optimization** — the coordinated sync plane
//!    carries realized arrival rates, letting `ReORR` re-solve
//!    Algorithm 1 at the *measured* utilization after a membership
//!    change (the fault-regression test at the bottom).
//!
//! Determinism contracts ride along: coordinated + synced runs are
//! bit-identical across event-list backends and repeats (classic
//! engine), and across worker-thread counts (parallel engine). The two
//! engines are *not* compared to each other at `D > 1` — the classic
//! tier shards the arrival stream over a shared fleet while the
//! parallel engine partitions the fleet itself, which are different
//! models by design.

use hetsched::cluster::pdes::{shard_config, shard_ranges};
use hetsched::cluster::{
    compensated_total, consensus_coordinated, ParallelSimulation, Policy, SyncState,
};
use hetsched::policies::RoundRobinDispatch;
use hetsched::prelude::*;
use proptest::prelude::*;

/// The small, statistically alive base system shared with the
/// differential suite (3 machines, exponential sizes).
fn base_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0, 4.0]);
    cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
    cfg.horizon = 30_000.0;
    cfg.warmup = 3_000.0;
    cfg
}

fn experiment(cfg: ClusterConfig, name: &str) -> Experiment {
    let mut e = Experiment::new(name, cfg, PolicySpec::orr());
    e.replications = 3;
    e
}

/// `Coordination::PhasePreserving` at `D = 1` is structurally invisible:
/// no coordination state is built, so the run is bit-identical to the
/// plain single-dispatcher path on both event-list backends.
#[test]
fn coordinated_d1_is_bit_identical_to_plain() {
    for backend in [EventListBackend::Heap, EventListBackend::Calendar] {
        let mut plain = base_cfg();
        plain.event_list = backend;
        let mut tiered = plain.clone();
        tiered.dispatch = DispatchSpec::sharded(1, SplitterSpec::IidRandom).coordinated();
        let a = experiment(plain, "plain").run().expect("plain");
        let b = experiment(tiered, "plain").run().expect("tiered");
        assert_eq!(a, b, "coordinated D=1 diverged on the {backend:?} backend");
    }
}

/// The tentpole: sequence-stamped replay reconstructs the global
/// dispatch sequence exactly, so a coordinated tier with no sync plane
/// produces response metrics bit-equal to `D = 1` at every shard count.
/// (Full `RunStats` equality is impossible — the tiered run reports
/// per-shard routing stats the plain run doesn't have — so the
/// decision-dependent metrics are compared field by field.)
#[test]
fn coordinated_tier_reconstructs_the_global_sequence() {
    let baseline = experiment(base_cfg(), "plain").run().expect("baseline");
    for d in [2usize, 4, 16] {
        let mut cfg = base_cfg();
        cfg.dispatch = DispatchSpec::sharded(d, SplitterSpec::IidRandom).coordinated();
        let sharded = experiment(cfg, "coordinated").run().expect("coordinated");
        for (a, b) in baseline.runs.iter().zip(&sharded.runs) {
            assert_eq!(a.jobs_counted, b.jobs_counted, "D={d} shifted arrivals");
            assert_eq!(a.jobs_finished, b.jobs_finished, "D={d} lost completions");
            assert_eq!(
                a.mean_response_ratio.to_bits(),
                b.mean_response_ratio.to_bits(),
                "D={d} coordinated tier failed to reconstruct the global sequence"
            );
            assert_eq!(
                a.mean_response_time.to_bits(),
                b.mean_response_time.to_bits(),
                "D={d} perturbed response times"
            );
            assert_eq!(b.shards.len(), d);
        }
    }
}

/// With a sync plane active the reconstruction is no longer bit-exact
/// (level shifts perturb credit floats), but the coordinated tier must
/// stay close to `D = 1` where the naive credit-mean overwrite blows
/// up. Pinned: coordinated `D = 16` with a tight 500 s sync stays
/// within 5% of the single dispatcher at test scale AND strictly beats
/// the naive tier under the identical sync plane.
#[test]
fn coordinated_sync_stays_near_d1_where_naive_sync_degrades() {
    let baseline = experiment(base_cfg(), "plain")
        .run()
        .expect("baseline")
        .mean_response_ratio
        .mean;
    let run = |coordination: Coordination| {
        let mut cfg = base_cfg();
        cfg.dispatch = DispatchSpec::sharded(16, SplitterSpec::IidRandom)
            .with_sync(SyncSpec::every(500.0).with_latency(5.0));
        cfg.dispatch.coordination = coordination;
        let r = experiment(cfg, "synced").run().expect("synced");
        assert!(r.runs.iter().all(|x| x.syncs_applied > 0));
        r.mean_response_ratio.mean
    };
    let coordinated = run(Coordination::PhasePreserving);
    let naive = run(Coordination::Naive);
    let dev = |x: f64| (x - baseline).abs() / baseline;
    assert!(
        dev(coordinated) < 0.05,
        "coordinated D=16 with sync drifted {:.1}% from D=1 (ratio {coordinated} vs {baseline})",
        100.0 * dev(coordinated)
    );
    assert!(
        dev(coordinated) < dev(naive),
        "coordinated sync ({coordinated}) failed to beat the naive overwrite ({naive})"
    );
}

/// Coordinated + synced runs are deterministic and backend-agnostic on
/// the classic engine: heap and calendar event lists agree bit for bit,
/// and a repeat run reproduces itself.
#[test]
fn coordinated_synced_runs_agree_across_backends_and_repeats() {
    let cfg_for = |backend| {
        let mut cfg = base_cfg();
        cfg.event_list = backend;
        cfg.dispatch = DispatchSpec::sharded(8, SplitterSpec::SourceHash { sources: 32 })
            .coordinated()
            .with_sync(SyncSpec::every(500.0).with_latency(10.0));
        cfg
    };
    let heap = experiment(cfg_for(EventListBackend::Heap), "synced")
        .run()
        .expect("heap");
    let cal = experiment(cfg_for(EventListBackend::Calendar), "synced")
        .run()
        .expect("calendar");
    assert_eq!(heap, cal);
    assert!(heap.runs.iter().all(|r| r.syncs_applied > 0));
    let again = experiment(cfg_for(EventListBackend::Heap), "synced")
        .run()
        .expect("repeat");
    assert_eq!(heap, again);
}

/// On the parallel engine the coordinated consensus fold must be
/// worker-thread invisible: 1 worker and 8 real workers produce
/// bit-identical results for a coordinated, synced 8-shard run.
#[test]
fn coordinated_sync_is_thread_count_invisible_in_the_parallel_engine() {
    let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0, 4.0, 8.0, 1.0, 2.0, 4.0, 8.0]);
    cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
    cfg.horizon = 15_000.0;
    cfg.warmup = 1_500.0;
    cfg.dispatch = DispatchSpec::sharded(8, SplitterSpec::IidRandom)
        .coordinated()
        .with_sync(SyncSpec::every(500.0).with_latency(10.0));
    let policies = || -> Vec<Box<dyn Policy>> {
        shard_ranges(cfg.speeds.len(), 8)
            .iter()
            .map(|r| {
                PolicySpec::orr()
                    .build(&shard_config(&cfg, r))
                    .expect("policy builds")
            })
            .collect()
    };
    let seq = ParallelSimulation::new(cfg.clone(), policies(), 29, 1)
        .expect("parallel builds")
        .run();
    let par = ParallelSimulation::new(cfg.clone(), policies(), 29, 8)
        .expect("parallel builds")
        .run();
    assert_eq!(seq, par, "worker count changed a coordinated synced run");
    assert!(seq.syncs_applied > 0, "sync plane never fired");
}

/// The reconstruction survives membership changes: before a membership
/// notice is delivered, the tier brings every shard to the current
/// global sequence position, so all trajectories switch membership at
/// the same arrival. Pinned the strong way — a coordinated `D = 8` run
/// with a mid-run crash (and resubmit churn) reproduces the `D = 1`
/// response metrics bit for bit.
#[test]
fn membership_changes_preserve_the_global_sequence_reconstruction() {
    let mut cfg = base_cfg();
    cfg.faults = Some(FaultSpec {
        up_time: DistSpec::Deterministic { value: 12_000.0 },
        down_time: DistSpec::Deterministic { value: 1.0e12 },
        on_crash: JobFaultSemantics::Resubmit,
        notice_delay_mean: 10.0,
        servers: Some(vec![2]),
    });
    let baseline = experiment(cfg.clone(), "plain").run().expect("baseline");
    cfg.dispatch = DispatchSpec::sharded(8, SplitterSpec::IidRandom).coordinated();
    let sharded = experiment(cfg, "coordinated").run().expect("coordinated");
    for (a, b) in baseline.runs.iter().zip(&sharded.runs) {
        assert!(a.crashes >= 1, "the fault never fired");
        assert_eq!(
            a.mean_response_ratio.to_bits(),
            b.mean_response_ratio.to_bits(),
            "a membership change broke the global-sequence reconstruction"
        );
        assert_eq!(a.jobs_resubmitted, b.jobs_resubmitted);
    }
}

/// The fault-regression scenario behind `BENCH_dispatch.json`'s
/// `repaired_penalty_pct`: kill the fastest machine (a third of the
/// fleet's capacity) mid-run under sticky `source_hash` splitting at
/// `D = 8`. The sticky naive tier keeps dispatching from the stale
/// design-point allocation; the coordinated tier's rate-carrying sync
/// lets `ReORR` re-solve Algorithm 1 at the measured post-crash
/// utilization, which must strictly reduce the response-ratio penalty.
#[test]
fn rate_reopt_beats_sticky_dispatch_when_the_fastest_machine_dies() {
    let mut cfg =
        ClusterConfig::paper_default(&[5.0, 3.0, 2.0, 1.5, 1.0, 1.0, 1.0, 1.0]).scaled(0.02);
    // At 0.6 utilization the post-crash system is still stable (offered
    // load 9.3 vs 10.5 live capacity), so the comparison measures
    // steady-state allocation quality rather than backlog explosion:
    // the sticky design-point allocation overloads the mid machines
    // while the slow ones idle, the re-optimized one spreads stably.
    cfg.utilization = 0.6;
    let kill_at = 0.4 * cfg.horizon;
    cfg.dispatch = DispatchSpec::sharded(8, SplitterSpec::SourceHash { sources: 64 });
    cfg.faults = Some(FaultSpec {
        up_time: DistSpec::Deterministic { value: kill_at },
        down_time: DistSpec::Deterministic { value: 1.0e12 },
        on_crash: JobFaultSemantics::Resubmit,
        notice_delay_mean: 10.0,
        servers: Some(vec![0]),
    });
    let mut repaired_cfg = cfg.clone();
    repaired_cfg.dispatch = repaired_cfg
        .dispatch
        .coordinated()
        .with_sync(SyncSpec::every(500.0).with_latency(5.0));
    let run = |cfg: ClusterConfig, policy: PolicySpec, name: &str| {
        let mut e = Experiment::new(name, cfg, policy);
        e.replications = 3;
        e.run().unwrap_or_else(|e| panic!("{name}: {e}"))
    };
    let sticky = run(cfg, PolicySpec::orr(), "sticky");
    let repaired = run(repaired_cfg, PolicySpec::reopt_orr(), "repaired");
    for r in sticky.runs.iter().chain(&repaired.runs) {
        assert!(r.crashes >= 1, "the fault never fired");
    }
    assert!(
        repaired.mean_response_ratio.mean < sticky.mean_response_ratio.mean,
        "rate-driven re-optimization ({}) failed to beat the sticky tier ({})",
        repaired.mean_response_ratio.mean,
        sticky.mean_response_ratio.mean
    );
}

/// Builds a dyadic allocation-fraction vector with a power-of-two
/// machine count: start from one part of mass 16/16 and repeatedly
/// halve a part until `target_len` parts exist. Every fraction is
/// `k/16` with `k` a power of two and the machine count divides means
/// exactly, so credits (`±1` and `16/k` increments), the consensus
/// fold, and the per-shard level shift are all *exact* in f64 — the
/// regime where the merge algebra can be pinned bitwise.
fn dyadic_fractions(choices: &[u8], target_len: usize) -> Vec<f64> {
    let mut parts = vec![16u32];
    let mut c = choices.iter().cycle();
    while parts.len() < target_len {
        let start = (*c.next().expect("cycled") as usize) % parts.len();
        let i = (0..parts.len())
            .map(|k| (start + k) % parts.len())
            .find(|&i| parts[i] > 1)
            .expect("16 units over <=8 parts always leaves one splittable");
        parts[i] /= 2;
        let half = parts[i];
        parts.push(half);
    }
    parts.iter().map(|&p| f64::from(p) / 16.0).collect()
}

/// Dispatches until every machine has started (received its step-2.d
/// guard reset). The level shift is only shift-invariant *after* the
/// start-up phase: a first selection resets the credit to the absolute
/// value 0, which no constant shift commutes with.
fn warm_up(rr: &mut RoundRobinDispatch) {
    for _ in 0..64 {
        if rr.assignments().iter().all(|&a| a > 0) {
            return;
        }
        rr.dispatch();
    }
    panic!("a machine never started within four full cycles");
}

proptest! {
    /// The dyadic oracle for the phase-preserving merge. With dyadic
    /// targets and power-of-two shard counts every quantity in the
    /// merge is exactly representable, so three properties hold
    /// *bitwise*, not just approximately:
    ///
    /// * the consensus fold is invariant under shard-order permutation;
    /// * the merge conserves total credit mass across the tier;
    /// * the merge preserves every shard's future dispatch sequence —
    ///   the level shift moves credits onto the consensus without
    ///   moving any rotation phase.
    #[test]
    fn phase_preserving_merge_is_exact_on_dyadic_targets(
        choices in prop::collection::vec(any::<u8>(), 1..=8),
        n_pow in 1u32..4,
        d_pow in 1u32..4,
        advances in prop::collection::vec(0u64..96, 8),
    ) {
        let fractions = dyadic_fractions(&choices, 1usize << n_pow);
        let d = 1usize << d_pow;
        let mut shards: Vec<RoundRobinDispatch> = (0..d)
            .map(|_| RoundRobinDispatch::new(&fractions, "rr"))
            .collect();
        for (s, &a) in shards.iter_mut().zip(&advances) {
            warm_up(s);
            for _ in 0..a {
                s.dispatch();
            }
        }
        let expected: Vec<Vec<usize>> = shards
            .iter()
            .map(|s| {
                let mut probe = s.clone();
                (0..48).map(|_| probe.dispatch()).collect()
            })
            .collect();
        let states: Vec<SyncState> =
            shards.iter().map(|s| s.sync_state().expect("rr syncs")).collect();
        let before: f64 = states.iter().map(|st| compensated_total(&st.credits)).sum();

        let consensus = consensus_coordinated(&states).expect("non-empty tier");
        prop_assert!(consensus.phase_preserving);
        let mut reversed = states.clone();
        reversed.reverse();
        let refolded = consensus_coordinated(&reversed).expect("non-empty tier");
        prop_assert_eq!(&consensus.credits, &refolded.credits,
            "consensus fold depends on shard order");

        for s in shards.iter_mut() {
            s.merge_sync(&consensus, 0.0);
        }
        let after: f64 = shards
            .iter()
            .map(|s| compensated_total(&s.sync_state().expect("rr syncs").credits))
            .sum();
        prop_assert_eq!(before.to_bits(), after.to_bits(),
            "merge created or destroyed credit mass: {} -> {}", before, after);
        for (i, (s, exp)) in shards.iter_mut().zip(&expected).enumerate() {
            let got: Vec<usize> = (0..48).map(|_| s.dispatch()).collect();
            prop_assert_eq!(&got, exp, "shard {} rotation moved under the merge", i);
        }
    }

    /// The general-f64 contract, for arbitrary normalized fractions and
    /// shard counts where rounding is real: the scan-argmin guard keeps
    /// the *next* dispatch decision of every shard unchanged, and
    /// credit mass is conserved to within accumulation tolerance.
    #[test]
    fn phase_preserving_merge_holds_under_general_floats(
        raw in prop::collection::vec(0.05f64..1.0, 2..=6),
        d in 2usize..6,
        advances in prop::collection::vec(0u64..96, 5),
    ) {
        let total: f64 = raw.iter().sum();
        let fractions: Vec<f64> = raw.iter().map(|w| w / total).collect();
        let mut shards: Vec<RoundRobinDispatch> = (0..d)
            .map(|_| RoundRobinDispatch::new(&fractions, "rr"))
            .collect();
        for (s, &a) in shards.iter_mut().zip(&advances) {
            for _ in 0..a {
                s.dispatch();
            }
        }
        let next_picks: Vec<usize> = shards
            .iter()
            .map(|s| {
                let mut probe = s.clone();
                probe.dispatch()
            })
            .collect();
        let states: Vec<SyncState> =
            shards.iter().map(|s| s.sync_state().expect("rr syncs")).collect();
        let before: f64 = states.iter().map(|st| compensated_total(&st.credits)).sum();
        let consensus = consensus_coordinated(&states).expect("non-empty tier");
        for s in shards.iter_mut() {
            s.merge_sync(&consensus, 0.0);
        }
        let after: f64 = shards
            .iter()
            .map(|s| compensated_total(&s.sync_state().expect("rr syncs").credits))
            .sum();
        prop_assert!(
            (after - before).abs() <= 1e-9 * before.abs().max(1.0),
            "credit mass drifted beyond tolerance: {} -> {}", before, after
        );
        for (i, (s, &pick)) in shards.iter_mut().zip(&next_picks).enumerate() {
            prop_assert_eq!(s.dispatch(), pick,
                "shard {} next decision moved despite the argmin guard", i);
        }
    }
}

//! Cross-crate API integration: the workflows a downstream user runs.

use hetsched::prelude::*;
use hetsched::queueing::numeric;

fn small_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0, 8.0]);
    cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
    cfg.horizon = 30_000.0;
    cfg.warmup = 5_000.0;
    cfg
}

#[test]
fn every_policy_runs_end_to_end() {
    let cfg = small_cfg();
    let specs = [
        PolicySpec::wran(),
        PolicySpec::oran(),
        PolicySpec::wrr(),
        PolicySpec::orr(),
        PolicySpec::orr_with_error(0.10),
        PolicySpec::orr_with_error(-0.10),
        PolicySpec::DynamicLeastLoad,
        PolicySpec::Jsq { d: 2 },
        PolicySpec::Static {
            allocation: AllocationSpec::Equal,
            dispatcher: DispatcherSpec::RoundRobin,
        },
    ];
    for spec in specs {
        let mut exp = Experiment::new(spec.label(), cfg.clone(), spec);
        exp.replications = 2;
        let r = exp
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
        assert!(r.mean_response_ratio.mean > 0.0, "{}", spec.label());
        assert!(
            r.runs.iter().all(|run| run.jobs_finished > 100),
            "{} finished too few jobs",
            spec.label()
        );
    }
}

#[test]
fn sita_runs_with_bounded_pareto_sizes() {
    let mut cfg = small_cfg();
    cfg.job_sizes = DistSpec::BoundedPareto {
        k: 1.0,
        p: 1000.0,
        alpha: 1.1,
    };
    let mut exp = Experiment::new("sita", cfg, PolicySpec::SitaE);
    exp.replications = 2;
    let r = exp.run().expect("SITA-E runs");
    assert!(r.mean_response_ratio.mean > 0.0);
}

#[test]
fn every_discipline_runs_end_to_end() {
    for disc in [
        DisciplineSpec::ProcessorSharing,
        DisciplineSpec::PsReference,
        DisciplineSpec::QuantumRoundRobin { quantum: 0.1 },
        DisciplineSpec::Fcfs,
    ] {
        let mut cfg = small_cfg();
        cfg.discipline = disc;
        let mut exp = Experiment::new("disc", cfg, PolicySpec::wrr());
        exp.replications = 2;
        let r = exp.run().unwrap_or_else(|e| panic!("{disc:?}: {e}"));
        assert!(r.mean_response_ratio.mean > 0.0, "{disc:?}");
    }
}

#[test]
fn ps_implementations_agree_statistically() {
    // The O(log n) and O(n) PS servers must produce identical runs (same
    // seeds, same arithmetic path at the job level).
    let mut a_cfg = small_cfg();
    a_cfg.discipline = DisciplineSpec::ProcessorSharing;
    let mut b_cfg = small_cfg();
    b_cfg.discipline = DisciplineSpec::PsReference;
    let a = Experiment::new("a", a_cfg, PolicySpec::orr())
        .quick(1.0, 2)
        .run()
        .expect("valid");
    let b = Experiment::new("b", b_cfg, PolicySpec::orr())
        .quick(1.0, 2)
        .run()
        .expect("valid");
    assert!(
        (a.mean_response_ratio.mean - b.mean_response_ratio.mean).abs()
            / a.mean_response_ratio.mean
            < 1e-6,
        "PS implementations diverge: {} vs {}",
        a.mean_response_ratio.mean,
        b.mean_response_ratio.mean
    );
}

#[test]
fn experiment_results_serialize() {
    let mut exp = Experiment::new("serde", small_cfg(), PolicySpec::orr());
    exp.replications = 2;
    let r = exp.run().expect("valid");
    let json = serde_json::to_string(&r).expect("serializes");
    assert!(json.contains("\"policy\":\"ORR\""));
    let back: hetsched::experiment::ExperimentResult =
        serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, r);
}

#[test]
fn experiment_spec_serializes() {
    let exp = Experiment::new("spec", small_cfg(), PolicySpec::orr());
    let json = serde_json::to_string(&exp).expect("serializes");
    let back: Experiment = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, exp);
}

#[test]
fn closed_form_and_numeric_agree_on_the_fly() {
    // A downstream user can cross-check the allocation the library gives
    // them; make sure both entry points stay exposed and consistent.
    let sys = HetSystem::from_utilization(&[1.0, 2.0, 8.0], 0.7).expect("valid");
    let a = closed_form::optimized_allocation(&sys);
    let b = numeric::optimized_allocation_numeric(&sys, 1e-10);
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-7, "{a:?} vs {b:?}");
    }
}

#[test]
fn deviation_tracking_through_full_simulation() {
    let mut cfg = small_cfg();
    cfg.speeds = vec![1.0, 1.0];
    cfg.deviation_interval = Some(1_000.0);
    let mut exp = Experiment::new(
        "dev",
        cfg,
        PolicySpec::Static {
            allocation: AllocationSpec::Equal,
            dispatcher: DispatcherSpec::RoundRobin,
        },
    );
    exp.replications = 1;
    let r = exp.run().expect("valid");
    assert_eq!(r.runs[0].deviations.len(), 30);
    assert!(r.runs[0].deviations.iter().all(|&d| d < 0.05));
}

#[test]
fn deviation_uses_the_policys_own_fractions() {
    // A *heterogeneous* static policy must be measured against its own
    // target fractions: WRR on a skewed system has tiny deviation even
    // though its fractions are far from equal.
    let mut cfg = small_cfg(); // speeds [1, 2, 8] → weighted ≈ [.09, .18, .73]
    cfg.deviation_interval = Some(1_000.0);
    let mut exp = Experiment::new("dev-wrr", cfg, PolicySpec::wrr());
    exp.replications = 1;
    let r = exp.run().expect("valid");
    let mean_dev: f64 =
        r.runs[0].deviations.iter().sum::<f64>() / r.runs[0].deviations.len() as f64;
    assert!(
        mean_dev < 0.02,
        "WRR measured against its own fractions should be smooth, got {mean_dev}"
    );
}

#[test]
fn table_renders_experiment_results() {
    let mut exp = Experiment::new("table", small_cfg(), PolicySpec::wrr());
    exp.replications = 2;
    let r = exp.run().expect("valid");
    let mut t = Table::new(["policy", "ratio"]);
    t.row([r.policy.clone(), format!("{}", r.mean_response_ratio)]);
    let rendered = t.render();
    assert!(rendered.contains("WRR"));
    assert!(rendered.contains('±'));
}
